package rbcast_test

import (
	"strings"
	"testing"

	rbcast "repro"
	"repro/internal/scenarios"
)

// completeGraph builds K_n as a custom GraphSpec.
func completeGraph(n int) *rbcast.GraphSpec {
	spec := &rbcast.GraphSpec{Nodes: n}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			spec.Edges = append(spec.Edges, [2]int{i, j})
		}
	}
	return spec
}

// breachPlan places five equivocators on K13 — f = 5 > N/3, past the
// quorum-intersection bound the Bracha family needs. Budget overrides the
// placement budget (Config.T = 4 still satisfies the constructor's
// N ≥ 3T+1 check; the breach is the adversary exceeding the assumption,
// not a misconfiguration). Seed 1 places all five off-source.
var breachPlan = rbcast.FaultPlan{
	Placement: rbcast.PlaceRandomBounded,
	Strategy:  rbcast.StrategyEquivocator,
	Budget:    5,
	Count:     5,
	Seed:      1,
}

func k13Config(p rbcast.Protocol) rbcast.Config {
	return rbcast.Config{
		Topology:  rbcast.TopologyCustom,
		Graph:     completeGraph(13),
		Protocol:  p,
		T:         4,
		Value:     1,
		MaxRounds: 64,
	}
}

// TestEquivocatorDeterministic checks that the equivocator's two-faced,
// audience-split volleys keep the simulation fully deterministic: the same
// seed and plan produce byte-identical Results on repeated runs and across
// both engines (sequential lock-step vs goroutine-per-node concurrent).
// Directional transmission is the one place delivery depends on the
// receiver's identity, so this pins that the audience filter sits outside
// every scheduling and loss decision.
func TestEquivocatorDeterministic(t *testing.T) {
	cfg := k13Config(rbcast.ProtocolBracha)

	seq := cfg
	seq.LockStep = true
	first, err := rbcast.Run(seq, breachPlan)
	if err != nil {
		t.Fatalf("sequential run: %v", err)
	}
	again, err := rbcast.Run(seq, breachPlan)
	if err != nil {
		t.Fatalf("repeat sequential run: %v", err)
	}
	conc := cfg
	conc.Concurrent = true
	cres, err := rbcast.Run(conc, breachPlan)
	if err != nil {
		t.Fatalf("concurrent run: %v", err)
	}

	h1, err := scenarios.ResultHash(first)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := scenarios.ResultHash(again)
	if err != nil {
		t.Fatal(err)
	}
	hc, err := scenarios.ResultHash(cres)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Errorf("repeated sequential runs diverged: %s vs %s", h1, h2)
	}
	if h1 != hc {
		t.Errorf("engines disagree under equivocation: sequential %s, concurrent %s (wrong %d vs %d, undecided %d vs %d)",
			h1, hc, first.Wrong, cres.Wrong, first.Undecided, cres.Undecided)
	}
	if first.Faults != 5 {
		t.Fatalf("breach plan placed %d faults, want 5", first.Faults)
	}
}

// TestEquivocationWhatIf runs the same five-equivocator plan on K13 against
// CPA and Bracha. CPA's commit rule is locally bounded and value-monotone —
// a two-faced neighbor contributes at most one (possibly wrong) vote, and
// with the source flooding the true value every honest node still gathers
// t+1 honest confirmations — so CPA sails through. Bracha's global quorums,
// by contrast, lose intersection once f > N/3: the even/odd split hands
// each audience a different 2f+1 READY quorum, and honest nodes commit the
// equivocators' flipped value. The harness exists to make exactly this kind
// of assumption-sensitivity visible on identical fault plans.
func TestEquivocationWhatIf(t *testing.T) {
	cpaRes, err := rbcast.Run(k13Config(rbcast.ProtocolCPA), breachPlan)
	if err != nil {
		t.Fatalf("cpa run: %v", err)
	}
	brachaRes, err := rbcast.Run(k13Config(rbcast.ProtocolBracha), breachPlan)
	if err != nil {
		t.Fatalf("bracha run: %v", err)
	}

	if cpaRes.Faults != 5 || brachaRes.Faults != 5 {
		t.Fatalf("plans diverged: cpa placed %d faults, bracha %d, want 5", cpaRes.Faults, brachaRes.Faults)
	}
	if !cpaRes.AllCorrect() {
		t.Errorf("cpa should absorb equivocation past the quorum bound: correct %d, wrong %d, undecided %d of %d honest",
			cpaRes.Correct, cpaRes.Wrong, cpaRes.Undecided, cpaRes.Honest)
	}
	if brachaRes.Wrong == 0 {
		t.Errorf("bracha at f > N/3 should lose quorum intersection and commit the flipped value somewhere: correct %d, wrong %d, undecided %d",
			brachaRes.Correct, brachaRes.Wrong, brachaRes.Undecided)
	}
}

// TestEquivocationWithinBound is the control for the what-if: the same
// adversary held to f ≤ T is absorbed by the quorum thresholds, so every
// honest node commits the source's value.
func TestEquivocationWithinBound(t *testing.T) {
	plan := breachPlan
	plan.Budget = 0 // placement budget falls back to Config.T = 4
	plan.Count = 3
	plan.Seed = 3
	res, err := rbcast.Run(k13Config(rbcast.ProtocolBracha), plan)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllCorrect() {
		t.Errorf("bracha with %d equivocators under T = 4 should stay all-correct: correct %d, wrong %d, undecided %d",
			res.Faults, res.Correct, res.Wrong, res.Undecided)
	}
}

// TestExplainReadyQuorum renders a traced Bracha run through Explain and
// checks the ready-quorum certificate prose: every decided non-source node
// names the rule and its 2T+1 READY quorum, and the ECHO-quorum sentence
// appears wherever the node's own READY came from the N−T ECHO path.
func TestExplainReadyQuorum(t *testing.T) {
	cfg := k13Config(rbcast.ProtocolBracha)
	cfg.Trace = true
	res, err := rbcast.Run(cfg, rbcast.FaultPlan{
		Placement: rbcast.PlaceRandomBounded,
		Strategy:  rbcast.StrategySilent,
		Count:     4,
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllCorrect() {
		t.Fatalf("at-threshold bracha run should be all-correct: correct %d of %d", res.Correct, res.Honest)
	}
	faulty := make(map[rbcast.Node]bool, len(res.Faulty))
	for _, n := range res.Faulty {
		faulty[n] = true
	}
	source := rbcast.Node{X: 0, Y: 0}
	sawEchoQuorum := false
	explained := 0
	for n, d := range res.Decisions {
		if !d.Decided || faulty[n] || n == source {
			continue
		}
		explained++
		out, err := rbcast.Explain(res, n)
		if err != nil {
			t.Fatalf("Explain(%v): %v", n, err)
		}
		if !strings.Contains(out, `rule "ready-quorum"`) {
			t.Errorf("node %v explanation lacks the ready-quorum rule:\n%s", n, out)
		}
		if !strings.Contains(out, "2f+1 delivery quorum") {
			t.Errorf("node %v explanation lacks the READY quorum sentence:\n%s", n, out)
		}
		if strings.Contains(out, "N−f ECHO quorum") {
			sawEchoQuorum = true
		}
	}
	if explained == 0 {
		t.Fatal("no non-source honest node decided — nothing explained")
	}
	if !sawEchoQuorum {
		t.Error("no explanation showed the ECHO-quorum path on a silent-fault run")
	}
}

// TestBrachaQuorumValidation pins the N ≥ 3T+1 rejection for the quorum
// family on a graph that is too small for its fault bound.
func TestBrachaQuorumValidation(t *testing.T) {
	cfg := k13Config(rbcast.ProtocolBracha)
	cfg.T = 5 // 3·5+1 = 16 > 13
	_, err := rbcast.Run(cfg, rbcast.FaultPlan{})
	if err == nil {
		t.Fatal("Run accepted N = 13 with T = 5 for a quorum protocol")
	}
	for _, frag := range []string{"N ≥ 3T+1", "bracha"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q does not mention %q", err, frag)
		}
	}
}
