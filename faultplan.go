package rbcast

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/topology"
)

// Placement selects how the adversary positions its faults.
type Placement int

const (
	// PlaceNone runs fault-free.
	PlaceNone Placement = iota + 1
	// PlaceBand corrupts every node of a width-Radius vertical band,
	// doubled at the antipodal column so the torus is cut — the Fig 8
	// construction (t = r(2r+1) per neighborhood).
	PlaceBand
	// PlaceCheckerboardBand corrupts the (x+y)-even half of the band —
	// the Fig 13 construction (t = ⌈r(2r+1)/2⌉ per neighborhood).
	// Requires an even torus height.
	PlaceCheckerboardBand
	// PlaceGreedyBand packs as many faults into the two bands as the
	// locally bounded budget T allows — the strongest legal band
	// adversary for achievability experiments.
	PlaceGreedyBand
	// PlaceRandomBounded corrupts nodes in random order while the budget
	// T permits (up to Count faults; Count ≤ 0 means as many as
	// possible).
	PlaceRandomBounded
	// PlacePercolation corrupts each node independently with probability
	// Probability — the §XI random-failure model (ignores T).
	PlacePercolation
)

// String names the placement ("none", "band", "checkerboard-band",
// "greedy-band", "random-bounded", "percolation").
func (p Placement) String() string {
	switch p {
	case PlaceNone:
		return "none"
	case PlaceBand:
		return "band"
	case PlaceCheckerboardBand:
		return "checkerboard-band"
	case PlaceGreedyBand:
		return "greedy-band"
	case PlaceRandomBounded:
		return "random-bounded"
	case PlacePercolation:
		return "percolation"
	default:
		return fmt.Sprintf("Placement(%d)", int(p))
	}
}

// Strategy selects Byzantine behaviour for the corrupted nodes. For
// crash-stop experiments use StrategyCrash.
type Strategy int

const (
	// StrategyCrash silences corrupted nodes from round CrashRound
	// onward (crash-stop failures).
	StrategyCrash Strategy = iota + 1
	// StrategySilent Byzantine nodes never transmit.
	StrategySilent
	// StrategyLiar nodes announce a flipped committed value once.
	StrategyLiar
	// StrategyForger nodes flip their own announcement and forge
	// indirect reports about everything they hear.
	StrategyForger
	// StrategySpoofer nodes impersonate honest neighbors (§X what-if);
	// only effective when Config.SpoofingPossible is set.
	StrategySpoofer
	// StrategyEquivocator nodes endorse one value toward even-id receivers
	// and the flipped value toward odd-id ones, in every quorum dialect at
	// once — a directional-transmission what-if the quorum protocols
	// (ProtocolBracha family) are sensitive to and the paper's
	// locally-bounded protocols shrug off.
	StrategyEquivocator
)

// String names the strategy ("crash", "silent", "liar", "forger",
// "spoofer", "equivocator").
func (s Strategy) String() string {
	switch s {
	case StrategyCrash:
		return "crash"
	case StrategySilent:
		return "silent"
	case StrategyLiar:
		return "liar"
	case StrategyForger:
		return "forger"
	case StrategySpoofer:
		return "spoofer"
	case StrategyEquivocator:
		return "equivocator"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// FaultPlan describes the adversary for one run. The JSON encoding (see
// encode.go) uses snake_case keys and stable enum names, omits zero-valued
// fields, and round-trips losslessly.
type FaultPlan struct {
	// Placement positions the faults; defaults to PlaceNone.
	Placement Placement `json:"placement,omitempty"`
	// Strategy selects behaviour; defaults to StrategyCrash.
	Strategy Strategy `json:"strategy,omitempty"`
	// Budget is the locally bounded budget for PlaceGreedyBand and
	// PlaceRandomBounded; 0 means "use Config.T".
	Budget int `json:"budget,omitempty"`
	// Count caps PlaceRandomBounded placements (≤ 0: maximal).
	Count int `json:"count,omitempty"`
	// Probability is the PlacePercolation failure probability.
	Probability float64 `json:"probability,omitempty"`
	// CrashRound is the round from which StrategyCrash nodes go silent
	// (0 = crashed from the start).
	CrashRound int `json:"crash_round,omitempty"`
	// Seed drives the randomized placements.
	Seed int64 `json:"seed,omitempty"`
	// budgetForPlan is resolved by Run (Config.T when Budget is 0).
	budgetForPlan int
}

// materialized is the resolved fault assignment.
type materialized struct {
	byzantine map[topology.NodeID]fault.Strategy
	crash     map[topology.NodeID]int
	faulty    []topology.NodeID
}

// materialize resolves the plan on a concrete network. The band placements
// are torus constructions (they corrupt grid columns) and reject every other
// family; the random placements work on any topology.Graph.
func (p FaultPlan) materialize(g topology.Graph, source topology.NodeID) (materialized, error) {
	placement := p.Placement
	if placement == 0 {
		placement = PlaceNone
	}
	budget := p.Budget
	if budget == 0 {
		budget = p.budgetForPlan
	}
	// torus gates the band placements on the grid family.
	torus := func() (*topology.Network, error) {
		net, ok := g.(*topology.Network)
		if !ok {
			return nil, fmt.Errorf("rbcast: placement %s requires the torus topology, got family %q",
				placement, g.Family())
		}
		return net, nil
	}

	var ids []topology.NodeID
	var err error
	switch placement {
	case PlaceNone:
	case PlaceBand:
		net, terr := torus()
		if terr != nil {
			return materialized{}, terr
		}
		r, w := net.Radius(), net.Torus().W
		for _, x0 := range []int{w / 4, 3 * w / 4} {
			ids = append(ids, fault.Band(net, x0, r)...)
		}
	case PlaceCheckerboardBand:
		net, terr := torus()
		if terr != nil {
			return materialized{}, terr
		}
		r, w := net.Radius(), net.Torus().W
		for _, x0 := range []int{w / 4, 3 * w / 4} {
			band, cerr := fault.CheckerboardBand(net, x0, r)
			if cerr != nil {
				return materialized{}, cerr
			}
			ids = append(ids, band...)
		}
	case PlaceGreedyBand:
		net, terr := torus()
		if terr != nil {
			return materialized{}, terr
		}
		r, w := net.Radius(), net.Torus().W
		for _, x0 := range []int{w / 4, 3 * w / 4} {
			band, cerr := fault.GreedyBand(net, x0, r, budget)
			if cerr != nil {
				return materialized{}, cerr
			}
			ids = append(ids, band...)
		}
	case PlaceRandomBounded:
		count := p.Count
		if count <= 0 {
			count = -1 // maximal placement
		}
		ids, err = fault.RandomBounded(g, budget, count, p.Seed)
	case PlacePercolation:
		ids, err = fault.Percolation(g, p.Probability, source, p.Seed)
	default:
		return materialized{}, fmt.Errorf("rbcast: invalid placement %d", int(placement))
	}
	if err != nil {
		return materialized{}, err
	}

	ids = filterFaulty(ids, source)

	out := materialized{faulty: ids}
	strategy := p.Strategy
	if strategy == 0 {
		strategy = StrategyCrash
	}
	switch strategy {
	case StrategyCrash:
		out.crash = make(map[topology.NodeID]int, len(ids))
		for _, id := range ids {
			out.crash[id] = p.CrashRound
		}
	case StrategySilent, StrategyLiar, StrategyForger, StrategySpoofer, StrategyEquivocator:
		var fs fault.Strategy
		switch strategy {
		case StrategySilent:
			fs = fault.Silent
		case StrategyLiar:
			fs = fault.Liar
		case StrategyForger:
			fs = fault.Forger
		case StrategyEquivocator:
			fs = fault.Equivocator
		default:
			fs = fault.Spoofer
		}
		out.byzantine = make(map[topology.NodeID]fault.Strategy, len(ids))
		for _, id := range ids {
			out.byzantine[id] = fs
		}
	default:
		return materialized{}, fmt.Errorf("rbcast: invalid strategy %d", int(strategy))
	}
	return out, nil
}

// filterFaulty canonicalizes a raw placement: the designated source stays
// honest, and a node placed twice (the two antipodal band constructions are
// appended independently and may meet on a narrow torus) counts once —
// otherwise Result.Faults and MaxFaultsPerNeighborhood would double-count
// it. First occurrence wins, preserving placement order.
func filterFaulty(ids []topology.NodeID, source topology.NodeID) []topology.NodeID {
	seen := make(map[topology.NodeID]struct{}, len(ids))
	kept := ids[:0]
	for _, id := range ids {
		if id == source {
			continue
		}
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		kept = append(kept, id)
	}
	return kept
}

// MaxFaultsPerNeighborhood exhaustively measures the worst closed
// neighborhood of a materialized plan on the configured network — the
// ground-truth validator for the locally bounded constraint.
func MaxFaultsPerNeighborhood(cfg Config, plan FaultPlan) (int, error) {
	g, err := cfg.network()
	if err != nil {
		return 0, err
	}
	source, err := cfg.sourceID(g)
	if err != nil {
		return 0, err
	}
	plan.budgetForPlan = cfg.T
	m, err := plan.materialize(g, source)
	if err != nil {
		return 0, err
	}
	return fault.MaxPerNeighborhood(g, m.faulty), nil
}

// faultMaxPerNeighborhood is an indirection point shared with result.go.
func faultMaxPerNeighborhood(g topology.Graph, ids []topology.NodeID) int {
	return fault.MaxPerNeighborhood(g, ids)
}
