package rbcast

// Topology families: the public enum selecting which topology.Graph family a
// Config materializes, the GraphSpec adjacency-list payload for custom
// graphs, and the family-aware construction/caching behind Config.network().
// The torus family keeps its historical spelling — a zero Topology with
// Width/Height/Radius set is exactly the pre-family Config — so existing
// scenarios (and their fingerprints; see encode.go) are untouched.

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/grid"
	"repro/internal/topology"
)

// Topology selects the network family.
type Topology int

const (
	// TopologyTorus is the paper's W×H torus with uniform radius-r
	// neighborhoods under Metric. The zero value is an alias for it, so
	// pre-family configurations keep their meaning (and fingerprints).
	TopologyTorus Topology = iota + 1
	// TopologyRGG is a seeded random geometric graph on the unit torus:
	// Nodes points placed by a deterministic PRNG stream keyed by
	// TopologySeed, adjacent when their toroidal Euclidean distance is at
	// most RGGRadius. The "noisy torus" bridge between the paper's grid
	// and physical deployments; identical (Nodes, RGGRadius, TopologySeed)
	// yield identical graphs on every platform.
	TopologyRGG
	// TopologyCustom is an explicit adjacency list supplied as Graph — the
	// escape hatch for the planar / loosely-connected instances of the
	// Maurer–Tixeuil line of work.
	TopologyCustom
)

// String names the topology family ("torus", "rgg", "custom").
func (t Topology) String() string {
	switch t {
	case TopologyTorus:
		return "torus"
	case TopologyRGG:
		return "rgg"
	case TopologyCustom:
		return "custom"
	default:
		return fmt.Sprintf("Topology(%d)", int(t))
	}
}

// GraphSpec is the explicit adjacency list of a TopologyCustom network.
// Nodes are identified by dense indices 0..Nodes-1; every edge is an
// unordered pair of distinct endpoints. The JSON encoding is the natural
// one: {"nodes": 5, "edges": [[0,1],[1,2]]}.
type GraphSpec struct {
	// Nodes is the node count (≥ 1).
	Nodes int `json:"nodes"`
	// Edges lists undirected edges; duplicates and self-loops are rejected.
	Edges [][2]int `json:"edges,omitempty"`
}

// family resolves the zero-value alias: an unset Topology is the torus.
func (c Config) family() Topology {
	if c.Topology == 0 {
		return TopologyTorus
	}
	return c.Topology
}

// validateTopology rejects family/field mismatches up front so that a
// Config never silently ignores fields belonging to another family.
func (c Config) validateTopology() error {
	switch c.family() {
	case TopologyTorus:
		if c.Nodes != 0 {
			return fmt.Errorf("rbcast: Nodes configures the rgg topology, not the torus")
		}
		if c.RGGRadius != 0 {
			return fmt.Errorf("rbcast: RGGRadius configures the rgg topology, not the torus")
		}
		if c.TopologySeed != 0 {
			return fmt.Errorf("rbcast: TopologySeed configures the rgg topology, not the torus")
		}
		if c.Graph != nil {
			return fmt.Errorf("rbcast: Graph configures the custom topology, not the torus")
		}
		if c.Source != 0 {
			return fmt.Errorf("rbcast: Source identifies non-torus sources; use SourceX/SourceY on the torus")
		}
	case TopologyRGG:
		if err := c.rejectTorusFields("rgg"); err != nil {
			return err
		}
		if c.Graph != nil {
			return fmt.Errorf("rbcast: Graph configures the custom topology, not rgg")
		}
		if c.Nodes < 1 {
			return fmt.Errorf("rbcast: rgg topology needs Nodes ≥ 1, got %d", c.Nodes)
		}
		if !(c.RGGRadius > 0 && c.RGGRadius <= 1) {
			return fmt.Errorf("rbcast: rgg topology needs RGGRadius in (0, 1], got %v", c.RGGRadius)
		}
	case TopologyCustom:
		if err := c.rejectTorusFields("custom"); err != nil {
			return err
		}
		if c.Nodes != 0 || c.RGGRadius != 0 || c.TopologySeed != 0 {
			return fmt.Errorf("rbcast: Nodes/RGGRadius/TopologySeed configure the rgg topology, not custom")
		}
		if c.Graph == nil {
			return fmt.Errorf("rbcast: custom topology needs a Graph adjacency list")
		}
	default:
		return fmt.Errorf("rbcast: invalid topology %d", int(c.Topology))
	}
	if c.family() != TopologyTorus {
		switch c.Protocol {
		case ProtocolBV4, ProtocolBV2:
			// One format across every torus-only rejection (here, the
			// placement gate, and internal/protocol): the requesting
			// protocol or placement, then the offending family.
			return fmt.Errorf("rbcast: protocol %s requires the torus topology, got family %q",
				c.Protocol, c.family())
		}
		if c.ExactEvidence {
			return fmt.Errorf("rbcast: ExactEvidence configures the torus-only bv4 protocol")
		}
	}
	return nil
}

// rejectTorusFields names the first torus-only field set alongside a
// non-torus family.
func (c Config) rejectTorusFields(family string) error {
	switch {
	case c.Width != 0:
		return fmt.Errorf("rbcast: Width configures the torus topology, not %s", family)
	case c.Height != 0:
		return fmt.Errorf("rbcast: Height configures the torus topology, not %s", family)
	case c.Radius != 0:
		return fmt.Errorf("rbcast: Radius configures the torus topology, not %s", family)
	case c.Metric != 0:
		return fmt.Errorf("rbcast: Metric configures the torus topology, not %s", family)
	case c.SourceX != 0 || c.SourceY != 0:
		return fmt.Errorf("rbcast: SourceX/SourceY locate torus sources; use Source on %s", family)
	}
	return nil
}

// networkKey identifies a torus topology by its constructor parameters.
type networkKey struct {
	w, h, r int
	metric  grid.Metric
}

// rggKey identifies a random geometric graph by its constructor parameters.
// The radius is keyed by its exact bit pattern so no two distinct values
// share an entry.
type rggKey struct {
	n          int
	radiusBits uint64
	seed       int64
}

// networkCache shares immutable graphs across runs: the adjacency and
// closed-neighborhood rows are precomputed once per distinct constructor
// parameters and reused by every subsequent Run/RunBatch call — including
// rbcastd cache misses, which repeatedly rebuild the same networks. Torus
// and rgg graphs are cached (their keys are tiny); custom graphs are not —
// their defining payload is the adjacency list itself, so caching would key
// a potentially huge map by a potentially huge key for no construction win.
var networkCache sync.Map // networkKey | rggKey -> topology.Graph

// network builds (or fetches the shared precomputed) topology for the config.
func (c Config) network() (topology.Graph, error) {
	switch c.family() {
	case TopologyTorus:
		return c.torusNetwork()
	case TopologyRGG:
		key := rggKey{n: c.Nodes, radiusBits: math.Float64bits(c.RGGRadius), seed: c.TopologySeed}
		if v, ok := networkCache.Load(key); ok {
			return v.(topology.Graph), nil
		}
		g, err := topology.NewGeometric(c.Nodes, c.RGGRadius, c.TopologySeed)
		if err != nil {
			return nil, err
		}
		actual, _ := networkCache.LoadOrStore(key, topology.Graph(g))
		return actual.(topology.Graph), nil
	case TopologyCustom:
		return topology.NewCustom(c.Graph.Nodes, c.Graph.Edges)
	default:
		return nil, fmt.Errorf("rbcast: invalid topology %d", int(c.Topology))
	}
}

// torusNetwork builds (or fetches) the torus family's network.
func (c Config) torusNetwork() (*topology.Network, error) {
	m := grid.Linf
	switch c.Metric {
	case 0, MetricLinf:
	case MetricL2:
		m = grid.L2
	default:
		return nil, fmt.Errorf("rbcast: invalid metric %d", int(c.Metric))
	}
	key := networkKey{w: c.Width, h: c.Height, r: c.Radius, metric: m}
	if v, ok := networkCache.Load(key); ok {
		return v.(*topology.Network), nil
	}
	net, err := topology.New(grid.Torus{W: c.Width, H: c.Height}, m, c.Radius)
	if err != nil {
		return nil, err
	}
	actual, _ := networkCache.LoadOrStore(key, net)
	return actual.(*topology.Network), nil
}

// sourceID resolves the configured source to a node id on the materialized
// graph: grid coordinates on the torus (wrapped, as before), the Source
// index elsewhere.
func (c Config) sourceID(g topology.Graph) (topology.NodeID, error) {
	if net, ok := g.(*topology.Network); ok {
		return net.IDOf(grid.C(c.SourceX, c.SourceY)), nil
	}
	if c.Source < 0 || c.Source >= g.Size() {
		return 0, fmt.Errorf("rbcast: source node %d out of range [0, %d)", c.Source, g.Size())
	}
	return topology.NodeID(c.Source), nil
}
