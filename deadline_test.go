package rbcast

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// deadlineScenario is a small scenario both engines accept; the deadline
// tests run it under contexts that are already done, so its size only has
// to be valid, not slow.
func deadlineScenario() (Config, FaultPlan) {
	return Config{Width: 16, Height: 10, Radius: 1, Protocol: ProtocolBV4, T: 2, Value: 1},
		FaultPlan{Placement: PlaceGreedyBand, Strategy: StrategySilent}
}

func TestRunContextExpiredDeadlineIsPartial(t *testing.T) {
	for _, concurrent := range []bool{false, true} {
		cfg, plan := deadlineScenario()
		cfg.Concurrent = concurrent

		ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
		defer cancel()
		res, err := RunContext(ctx, cfg, plan)
		if err == nil {
			t.Fatalf("concurrent=%v: expired deadline produced no error", concurrent)
		}
		if !errors.Is(err, ErrDeadline) {
			t.Errorf("concurrent=%v: error does not wrap ErrDeadline: %v", concurrent, err)
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("concurrent=%v: error does not wrap context.DeadlineExceeded: %v", concurrent, err)
		}
		// The partial result is still a scored Result over the full grid —
		// just one that never ran a round and never quiesced.
		if res.Honest == 0 || res.Rounds != 0 || res.Quiesced {
			t.Errorf("concurrent=%v: partial result not scored at round 0: honest=%d rounds=%d quiesced=%v",
				concurrent, res.Honest, res.Rounds, res.Quiesced)
		}
	}
}

func TestRunContextCancellationIsPartial(t *testing.T) {
	for _, concurrent := range []bool{false, true} {
		cfg, plan := deadlineScenario()
		cfg.Concurrent = concurrent

		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := RunContext(ctx, cfg, plan)
		if !errors.Is(err, ErrDeadline) || !errors.Is(err, context.Canceled) {
			t.Errorf("concurrent=%v: cancelled run error = %v, want ErrDeadline wrapping context.Canceled",
				concurrent, err)
		}
	}
}

func TestRunContextBackgroundMatchesRun(t *testing.T) {
	cfg, plan := deadlineScenario()
	want, err := Run(cfg, plan)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunContext(context.Background(), cfg, plan)
	if err != nil {
		t.Fatal(err)
	}
	if got.Correct != want.Correct || got.Rounds != want.Rounds || got.Broadcasts != want.Broadcasts {
		t.Errorf("RunContext(Background) diverges from Run: %+v vs %+v", got, want)
	}
}

func TestRunBatchJobTimeout(t *testing.T) {
	cfg, plan := deadlineScenario()
	jobs := []Job{{Config: cfg, Plan: plan}}

	// A vanishing timeout deadlines the job; a generous one does not. Both
	// go through the same WithTimeout plumbing.
	out := RunBatch(jobs, BatchOptions{JobTimeout: time.Nanosecond})
	if len(out) != 1 || !errors.Is(out[0].Err, ErrDeadline) {
		t.Fatalf("1ns timeout: %+v, want ErrDeadline", out)
	}
	if out[0].Result.Honest == 0 || out[0].Result.Quiesced {
		t.Errorf("1ns timeout: partial result not scored: %+v", out[0].Result)
	}

	out = RunBatch(jobs, BatchOptions{JobTimeout: time.Minute})
	if out[0].Err != nil {
		t.Fatalf("1m timeout: unexpected error %v", out[0].Err)
	}
	if !out[0].Result.Quiesced {
		t.Error("1m timeout: run did not complete")
	}
}

func TestRunBatchPanicIsolation(t *testing.T) {
	cfg, plan := deadlineScenario()
	jobs := []Job{{Config: cfg, Plan: plan}, {Config: cfg, Plan: plan}, {Config: cfg, Plan: plan}}

	// The dispatch hook runs inside each worker's recover scope, so a
	// panic here is indistinguishable from a panicking scenario.
	batchJobDispatched = func(i int) {
		if i == 1 {
			panic("synthetic job bug")
		}
	}
	defer func() { batchJobDispatched = nil }()

	out := RunBatch(jobs, BatchOptions{})
	var pe *PanicError
	if !errors.As(out[1].Err, &pe) {
		t.Fatalf("job 1 error = %v, want *PanicError", out[1].Err)
	}
	if pe.Index != 1 || pe.Value != "synthetic job bug" || len(pe.Stack) == 0 {
		t.Errorf("PanicError = index %d value %v stack %d bytes", pe.Index, pe.Value, len(pe.Stack))
	}
	if !strings.Contains(pe.Error(), "job 1 panicked") {
		t.Errorf("PanicError message = %q", pe.Error())
	}
	for _, i := range []int{0, 2} {
		if out[i].Err != nil || !out[i].Result.Quiesced {
			t.Errorf("sibling job %d damaged by the panic: err=%v quiesced=%v",
				i, out[i].Err, out[i].Result.Quiesced)
		}
	}
}

func TestPanicErrorSyncRendering(t *testing.T) {
	pe := &PanicError{Index: -1, Value: "boom"}
	if got := pe.Error(); !strings.Contains(got, "scenario panicked") || strings.Contains(got, "job") {
		t.Errorf("sync PanicError message = %q", got)
	}
}
