package client

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	rbcast "repro"
	"repro/internal/server"
)

// testScenario is the small, fast scenario used across the suite.
func testScenario() rbcast.Job {
	return rbcast.Job{
		Config: rbcast.Config{Width: 16, Height: 10, Radius: 1, Protocol: rbcast.ProtocolBV4, T: 2, Value: 1},
		Plan:   rbcast.FaultPlan{Placement: rbcast.PlaceGreedyBand, Strategy: rbcast.StrategySilent},
	}
}

// recordingClient wires the test seams: sleeps are recorded instead of
// waited out, and jitter is pinned to 0.5 so backoffs are deterministic.
func recordingClient(url string, opts Options, sleeps *[]time.Duration) *Client {
	c := New(url, opts)
	c.jitter = func() float64 { return 0.5 }
	c.sleep = func(ctx context.Context, d time.Duration) error {
		*sleeps = append(*sleeps, d)
		return ctx.Err()
	}
	return c
}

func TestRunAgainstRealDaemon(t *testing.T) {
	ts := httptest.NewServer(server.New(server.Options{}))
	defer ts.Close()
	c := New(ts.URL, Options{})

	job := testScenario()
	got, err := c.Run(context.Background(), job.Config, job.Plan)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got.Cached {
		t.Error("first run reported cached")
	}
	if got.Fingerprint != job.Fingerprint() {
		t.Errorf("fingerprint %q, want %q", got.Fingerprint, job.Fingerprint())
	}
	want, err := rbcast.Run(job.Config, job.Plan)
	if err != nil {
		t.Fatal(err)
	}
	if got.Result.Correct != want.Correct || got.Result.Rounds != want.Rounds {
		t.Errorf("result diverges from direct run: correct %d rounds %d, want %d/%d",
			got.Result.Correct, got.Result.Rounds, want.Correct, want.Rounds)
	}

	again, err := c.Run(context.Background(), job.Config, job.Plan)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Error("second identical run was not served from the cache")
	}
}

func TestBatchRoundTrip(t *testing.T) {
	ts := httptest.NewServer(server.New(server.Options{}))
	defer ts.Close()
	c := New(ts.URL, Options{})
	ctx := context.Background()

	flood := rbcast.Job{Config: rbcast.Config{Width: 16, Height: 10, Radius: 1, Protocol: rbcast.ProtocolFlood, Value: 1}}
	ack, err := c.Submit(ctx, []rbcast.Job{testScenario(), flood}, 0)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if ack.Jobs != 2 || ack.ID == "" {
		t.Fatalf("ack = %+v", ack)
	}
	waitCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	st, err := c.WaitJob(waitCtx, ack.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatalf("WaitJob: %v", err)
	}
	if len(st.Results) != 2 {
		t.Fatalf("status = %+v", st)
	}
	for i, jr := range st.Results {
		if jr.Error != "" || jr.Result == nil {
			t.Errorf("element %d: %+v", i, jr)
		}
	}
}

func TestRetryHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"queue full"}`))
			return
		}
		w.Write([]byte(`{"status":"ok","uptime_seconds":1}`))
	}))
	defer ts.Close()

	var sleeps []time.Duration
	c := recordingClient(ts.URL, Options{}, &sleeps)
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("Health after retries: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d attempts, want 3", got)
	}
	// Both backoffs must be the server's Retry-After hint, not the
	// exponential schedule.
	if len(sleeps) != 2 || sleeps[0] != time.Second || sleeps[1] != time.Second {
		t.Errorf("sleeps = %v, want [1s 1s]", sleeps)
	}
}

func TestRetryBacksOffExponentiallyWithJitter(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 3 {
			// No Retry-After: the client falls back to its own schedule.
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"status":"ok","uptime_seconds":1}`))
	}))
	defer ts.Close()

	var sleeps []time.Duration
	c := recordingClient(ts.URL, Options{BaseBackoff: 100 * time.Millisecond, MaxBackoff: 150 * time.Millisecond}, &sleeps)
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("Health after retries: %v", err)
	}
	// jitter pinned at 0.5: delay = d/2 + d/4 = 3d/4 with d the capped
	// doubling schedule 100ms, 150ms, 150ms.
	want := []time.Duration{75 * time.Millisecond, 112500 * time.Microsecond, 112500 * time.Microsecond}
	if len(sleeps) != len(want) {
		t.Fatalf("sleeps = %v, want %v", sleeps, want)
	}
	for i := range want {
		if sleeps[i] != want[i] {
			t.Errorf("sleep %d = %v, want %v", i, sleeps[i], want[i])
		}
	}
}

func TestNonRetryableStatusReturnsImmediately(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":"invalid scenario"}`))
	}))
	defer ts.Close()

	var sleeps []time.Duration
	c := recordingClient(ts.URL, Options{}, &sleeps)
	err := c.Health(context.Background())
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest || se.Message != "invalid scenario" {
		t.Fatalf("err = %v, want StatusError 400 with daemon message", err)
	}
	if calls.Load() != 1 || len(sleeps) != 0 {
		t.Errorf("non-retryable status must not retry: %d calls, sleeps %v", calls.Load(), sleeps)
	}
}

func TestRetriesExhaustAfterMaxRetries(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()

	var sleeps []time.Duration
	c := recordingClient(ts.URL, Options{MaxRetries: 2}, &sleeps)
	err := c.Health(context.Background())
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want StatusError 429", err)
	}
	if se.RetryAfter != time.Second {
		t.Errorf("RetryAfter = %v, want 1s", se.RetryAfter)
	}
	if got := calls.Load(); got != 3 { // 1 try + 2 retries
		t.Errorf("server saw %d attempts, want 3", got)
	}
}

func TestParseRetryAfter(t *testing.T) {
	future := time.Now().Add(90 * time.Second).UTC().Format(http.TimeFormat)
	past := time.Now().Add(-90 * time.Second).UTC().Format(http.TimeFormat)
	tests := []struct {
		name  string
		value string
		// min/max bound the accepted result; exact values use min == max.
		min, max time.Duration
	}{
		{"absent header", "", 0, 0},
		{"delta-seconds", "7", 7 * time.Second, 7 * time.Second},
		{"zero delta-seconds", "0", 0, 0},
		{"negative delta-seconds clamps to 0", "-3", 0, 0},
		{"HTTP-date in the future", future, time.Millisecond, 90 * time.Second},
		{"HTTP-date in the past clamps to 0", past, 0, 0},
		{"HTTP-date exactly now clamps to 0", time.Now().UTC().Format(http.TimeFormat), 0, 0},
		{"garbage", "garbage", 0, 0},
		{"fractional seconds are not delta-seconds", "1.5", 0, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := parseRetryAfter(tt.value)
			if d < 0 {
				t.Fatalf("parseRetryAfter(%q) = %v: a negative duration must never escape (it would skew backoff caps)", tt.value, d)
			}
			if d < tt.min || d > tt.max {
				t.Errorf("parseRetryAfter(%q) = %v, want in [%v, %v]", tt.value, d, tt.min, tt.max)
			}
		})
	}
}

func TestSweepAgainstRealDaemon(t *testing.T) {
	ts := httptest.NewServer(server.New(server.Options{}))
	defer ts.Close()
	c := New(ts.URL, Options{})

	base := rbcast.Job{
		Config: rbcast.Config{Width: 14, Height: 10, Radius: 1, Protocol: rbcast.ProtocolFlood, Value: 1},
		Plan:   rbcast.FaultPlan{Placement: rbcast.PlaceBand, Strategy: rbcast.StrategyCrash},
	}
	axes := rbcast.SweepAxes{CrashRounds: []int{1, 2, 3}}
	got, err := c.Sweep(context.Background(), base, axes, 0)
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if len(got.Elements) != 3 {
		t.Fatalf("got %d elements, want 3", len(got.Elements))
	}
	spec := rbcast.SweepSpec{Base: base, Axes: axes}
	jobs, err := spec.Elements()
	if err != nil {
		t.Fatal(err)
	}
	for i, el := range got.Elements {
		if el.Error != "" || el.Result == nil {
			t.Fatalf("element %d failed: %s", i, el.Error)
		}
		want, err := rbcast.Run(jobs[i].Config, jobs[i].Plan)
		if err != nil {
			t.Fatal(err)
		}
		if el.Result.Rounds != want.Rounds || el.Result.Correct != want.Correct {
			t.Errorf("element %d diverges: rounds %d correct %d, want %d/%d",
				i, el.Result.Rounds, el.Result.Correct, want.Rounds, want.Correct)
		}
		if el.Fingerprint != jobs[i].Fingerprint() {
			t.Errorf("element %d fingerprint %q", i, el.Fingerprint)
		}
	}
	if got.Stats.Forks == 0 {
		t.Errorf("stats %+v: expected prefix forks", got.Stats)
	}

	// A repeat sweep is a pure cache read.
	again, err := c.Sweep(context.Background(), base, axes, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, el := range again.Elements {
		if !el.Cached {
			t.Errorf("repeat element %d not cached", i)
		}
	}
}

// eventsLine renders one NDJSON progress line for the fake daemons below.
func eventsLine(state string, done, total int, rounds int64) string {
	return fmt.Sprintf(`{"state":%q,"jobs_done":%d,"jobs_total":%d,"node_rounds":%d,"dedup_hits":0,"errors":0}`+"\n",
		state, done, total, rounds)
}

// TestWatchJobReconnectsTruncatedStream: the first events connection dies
// mid-stream; WatchJob must reconnect, suppress the replayed snapshot, and
// deliver a monotone event sequence through the terminal state.
func TestWatchJobReconnectsTruncatedStream(t *testing.T) {
	var conns atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs/j1/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		switch conns.Add(1) {
		case 1:
			// One live snapshot, then the connection drops (idle proxy,
			// client timeout) — NDJSON has no terminator, so this is a
			// truncation from the client's point of view.
			io.WriteString(w, eventsLine("running", 1, 3, 5))
		default:
			// Reconnect: the daemon replays the current snapshot, then the
			// job advances to the terminal state.
			io.WriteString(w, eventsLine("running", 1, 3, 5))
			io.WriteString(w, eventsLine("running", 2, 3, 9))
			io.WriteString(w, eventsLine("done", 3, 3, 12))
		}
	})
	mux.HandleFunc("GET /v1/jobs/j1", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, `{"id":"j1","state":"done","jobs":3,"results":[{},{},{}]}`)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	var sleeps []time.Duration
	c := recordingClient(ts.URL, Options{}, &sleeps)
	var events []ProgressEvent
	st, err := c.WatchJob(context.Background(), "j1", func(ev ProgressEvent) { events = append(events, ev) })
	if err != nil {
		t.Fatalf("WatchJob: %v", err)
	}
	if !st.Done() || len(st.Results) != 3 {
		t.Fatalf("final status = %+v", st)
	}
	if got := conns.Load(); got != 2 {
		t.Errorf("server saw %d events connections, want 2 (one truncated, one reconnect)", got)
	}
	if len(sleeps) != 1 {
		t.Errorf("sleeps = %v, want exactly one reconnect backoff", sleeps)
	}
	want := []ProgressEvent{
		{State: "running", JobsDone: 1, JobsTotal: 3, NodeRounds: 5},
		{State: "running", JobsDone: 2, JobsTotal: 3, NodeRounds: 9},
		{State: "done", JobsDone: 3, JobsTotal: 3, NodeRounds: 12},
	}
	if len(events) != len(want) {
		t.Fatalf("events = %+v, want %+v (replayed snapshot must be suppressed)", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, events[i], want[i])
		}
	}
}

// TestWatchJobStallBudget: reconnects that never yield a new event burn
// the retry budget and fail; the watcher must not spin forever on a
// daemon that keeps replaying the same snapshot and hanging up.
func TestWatchJobStallBudget(t *testing.T) {
	var conns atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs/j2/events", func(w http.ResponseWriter, r *http.Request) {
		conns.Add(1)
		io.WriteString(w, eventsLine("running", 1, 2, 5))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	var sleeps []time.Duration
	c := recordingClient(ts.URL, Options{MaxRetries: 2}, &sleeps)
	_, err := c.WatchJob(context.Background(), "j2", nil)
	if err == nil || !strings.Contains(err.Error(), "no progress") {
		t.Fatalf("err = %v, want a stalled-watch failure", err)
	}
	// Connection 1 progresses (resets the budget); connections 2-4 replay
	// the same snapshot and exhaust MaxRetries=2.
	if got := conns.Load(); got != 4 {
		t.Errorf("server saw %d connections, want 4", got)
	}
}

// TestWatchJobStatusErrorCarriesRequestID: a refused stream surfaces the
// daemon's request id so the failure can be matched to the request log and
// flight recorder.
func TestWatchJobStatusErrorCarriesRequestID(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Request-Id", "abc-000042")
		w.WriteHeader(http.StatusNotFound)
		io.WriteString(w, `{"error":"unknown job"}`)
	}))
	defer ts.Close()

	var sleeps []time.Duration
	c := recordingClient(ts.URL, Options{}, &sleeps)
	_, err := c.WatchJob(context.Background(), "nope", nil)
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusNotFound {
		t.Fatalf("err = %v, want StatusError 404", err)
	}
	if se.RequestID != "abc-000042" {
		t.Errorf("RequestID = %q, want abc-000042", se.RequestID)
	}
	if !strings.Contains(se.Error(), "abc-000042") {
		t.Errorf("Error() = %q, want the request id rendered", se.Error())
	}
}
