package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	rbcast "repro"
	"repro/internal/cluster"
)

// Cluster is a fleet-aware rbcastd client. It builds the same
// consistent-hash ring the daemons build from their -peers list and sends
// each run straight to its fingerprint owner, so requests land on the
// node that holds (or will compute and cache) the result without burning
// a proxy hop inside the fleet. When the owner is unreachable the run
// fails over to the ring successors in order — the same nodes the fleet
// itself would pick up the shard on — so a single dead member costs a
// redial, not an outage.
//
// Members answering with a 307 redirect (daemons running -redirect) are
// followed transparently: the underlying http.Client replays the request
// body to the Location target, which in a consistent fleet is the owner
// this client would have picked anyway.
//
// A Cluster is safe for concurrent use.
type Cluster struct {
	ring    *cluster.Ring
	clients map[string]*Client
}

// NewCluster builds a fleet client over the member base URLs. The list
// must match the daemons' own -peers configuration — same URLs, any order
// — or this client's ring will disagree with the fleet's and every run
// will cost a proxy hop. opts apply to each per-member client; transport
// errors fail over to the next ring node immediately instead of retrying
// the dead member, while shed requests (429/503) still back off and retry
// against the member that shed them.
func NewCluster(members []string, opts Options) (*Cluster, error) {
	ring, err := cluster.New(members)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	cs := make(map[string]*Client, ring.Len())
	for _, m := range ring.Members() {
		mc := New(m, opts)
		mc.failfast = true
		cs[m] = mc
	}
	return &Cluster{ring: ring, clients: cs}, nil
}

// Members returns the fleet base URLs in ring-construction (sorted) order.
func (c *Cluster) Members() []string { return c.ring.Members() }

// Owner returns the member URL that owns a scenario's fingerprint.
func (c *Cluster) Owner(cfg rbcast.Config, plan rbcast.FaultPlan) string {
	return c.ring.Owner(rbcast.Job{Config: cfg, Plan: plan}.Fingerprint())
}

// Client returns the single-node client for one member URL (nil for a URL
// outside the fleet). Batch and sweep traffic is not fingerprint-routed —
// those execute on whichever node accepts them — so callers place it
// explicitly on the member of their choice.
func (c *Cluster) Client(member string) *Client { return c.clients[member] }

// Run executes one scenario against its fingerprint owner, failing over
// to ring successors while members are unreachable. A daemon that answers
// — success, shed-and-retried, or a terminal status error — ends the
// failover walk: only transport-level silence moves to the next node.
func (c *Cluster) Run(ctx context.Context, cfg rbcast.Config, plan rbcast.FaultPlan) (RunResult, error) {
	fp := rbcast.Job{Config: cfg, Plan: plan}.Fingerprint()
	var last error
	for _, member := range c.ring.Successors(fp, c.ring.Len()) {
		res, err := c.clients[member].Run(ctx, cfg, plan)
		if err == nil {
			return res, nil
		}
		var se *StatusError
		if errors.As(err, &se) {
			// The member answered; its verdict is the fleet's verdict.
			return RunResult{}, err
		}
		last = err
		if ctx.Err() != nil {
			break
		}
	}
	return RunResult{}, fmt.Errorf("client: no fleet member reachable for %s: %w", fp, last)
}

// CachedResult probes one daemon's result cache (GET /v1/cache/{fp}):
// the resident result and true, or false on a clean miss. The probe never
// executes a scenario and never perturbs the daemon's cache order or
// hit/miss counters — it is the fleet's own warm-from-a-sibling route,
// exposed for tooling that audits where fingerprints are resident.
func (c *Client) CachedResult(ctx context.Context, fingerprint string) (RunResult, bool, error) {
	var out RunResult
	_, data, err := c.do(ctx, http.MethodGet, "/v1/cache/"+fingerprint, nil, true)
	if err != nil {
		var se *StatusError
		if errors.As(err, &se) && se.Code == http.StatusNotFound {
			return RunResult{}, false, nil
		}
		return RunResult{}, false, err
	}
	if err := json.Unmarshal(data, &out); err != nil {
		return RunResult{}, false, fmt.Errorf("client: decoding cache probe: %w", err)
	}
	return out, true, nil
}
