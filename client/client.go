// Package client is the Go client for rbcastd, the scenario-serving
// daemon. It speaks the daemon's HTTP/JSON contract (POST /v1/run,
// POST /v1/batch, GET /v1/jobs/{id}, GET /healthz, GET /metrics) and
// implements the client half of the serving path's backpressure protocol:
// requests the daemon sheds with 429 (or 503) are retried with jittered
// exponential backoff, honoring the Retry-After hint when the daemon sends
// one, under the caller's context deadline.
//
// Almost every rbcastd request is safe to retry: scenario runs are
// deterministic pure functions of their fingerprint, and a shed batch
// submission was never accepted. The one exception is a batch submission
// that fails in transit: each accepted POST /v1/batch creates a new job,
// so a transport error after the request may have reached the daemon is
// NOT retried — only failures that prove non-receipt (the dial itself
// failed) are. Shed submissions (429/503) remain retryable, because the
// daemon answering "not accepted" is exactly the confirmation needed.
//
// Cluster is the fleet-aware variant: it routes each run to its
// fingerprint owner over the same consistent-hash ring the daemons use
// and fails over to ring successors when members are unreachable.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	rbcast "repro"
)

// Options configure a Client. The zero value is usable: a 30-second
// per-attempt HTTP timeout, 4 retries, backoff from 100ms to 2s.
type Options struct {
	// HTTPClient issues the requests (nil: a client with a 30s timeout).
	HTTPClient *http.Client
	// MaxRetries is the number of re-attempts after the first try for
	// retryable failures — 429, 503, transport errors (0: 4; negative:
	// never retry).
	MaxRetries int
	// BaseBackoff is the first retry's backoff ceiling; each further
	// attempt doubles it (0: 100ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (0: 2s). A server
	// Retry-After hint overrides the computed backoff but is still capped
	// by MaxBackoff, so a misbehaving server cannot park the client.
	MaxBackoff time.Duration
}

// Client is an rbcastd HTTP client. It is safe for concurrent use.
type Client struct {
	base        string
	hc          *http.Client
	maxRetries  int
	baseBackoff time.Duration
	maxBackoff  time.Duration

	// failfast makes transport errors return immediately instead of
	// retrying (status-based retries are unaffected). Cluster sets it on
	// member clients: an unreachable member should fail over to its ring
	// successor at once, not burn the retry budget redialing a dead node.
	failfast bool

	// sleep and jitter are test seams: sleep waits out a backoff under
	// the context, jitter draws from [0,1).
	sleep  func(context.Context, time.Duration) error
	jitter func() float64
}

// New builds a client for the daemon at baseURL (e.g. "http://127.0.0.1:8080").
func New(baseURL string, opts Options) *Client {
	hc := opts.HTTPClient
	if hc == nil {
		hc = &http.Client{Timeout: 30 * time.Second}
	}
	maxRetries := opts.MaxRetries
	switch {
	case maxRetries == 0:
		maxRetries = 4
	case maxRetries < 0:
		maxRetries = 0
	}
	base := opts.BaseBackoff
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	maxB := opts.MaxBackoff
	if maxB <= 0 {
		maxB = 2 * time.Second
	}
	return &Client{
		base:        strings.TrimRight(baseURL, "/"),
		hc:          hc,
		maxRetries:  maxRetries,
		baseBackoff: base,
		maxBackoff:  maxB,
		sleep:       sleepCtx,
		jitter:      rand.Float64,
	}
}

// StatusError is a non-2xx response from the daemon.
type StatusError struct {
	// Code is the HTTP status code.
	Code int
	// Message is the daemon's error body (the "error" field when the body
	// is the uniform JSON error shape, the raw body otherwise).
	Message string
	// RetryAfter is the daemon's Retry-After hint (0 when absent).
	RetryAfter time.Duration
	// RequestID is the daemon's X-Request-Id for the failed request ("",
	// when absent). It keys the daemon's request log and flight recorder
	// (GET /debug/requests), so a client-side failure greps straight to
	// its server-side timeline.
	RequestID string
}

// Error implements error.
func (e *StatusError) Error() string {
	if e.RequestID != "" {
		return fmt.Sprintf("rbcastd: %d %s: %s (request %s)",
			e.Code, http.StatusText(e.Code), e.Message, e.RequestID)
	}
	return fmt.Sprintf("rbcastd: %d %s: %s", e.Code, http.StatusText(e.Code), e.Message)
}

// Temporary reports whether the failure is worth retrying: the daemon shed
// the request (429) or is draining (503).
func (e *StatusError) Temporary() bool {
	return e.Code == http.StatusTooManyRequests || e.Code == http.StatusServiceUnavailable
}

// RunResult is a completed synchronous run.
type RunResult struct {
	Fingerprint string        `json:"fingerprint"`
	Result      rbcast.Result `json:"result"`
	// Cached reports the daemon served the run from its result cache.
	Cached bool `json:"-"`
}

// BatchAck acknowledges an accepted batch submission.
type BatchAck struct {
	ID        string `json:"id"`
	Jobs      int    `json:"jobs"`
	StatusURL string `json:"status_url"`
}

// JobStatus mirrors GET /v1/jobs/{id}.
type JobStatus struct {
	ID      string      `json:"id"`
	State   string      `json:"state"` // "running" or "done"
	Jobs    int         `json:"jobs"`
	Results []JobResult `json:"results,omitempty"`
}

// Done reports whether the batch finished.
func (s JobStatus) Done() bool { return s.State == "done" }

// JobResult is one batch element's outcome.
type JobResult struct {
	Fingerprint string         `json:"fingerprint"`
	Result      *rbcast.Result `json:"result,omitempty"`
	Error       string         `json:"error,omitempty"`
	Cached      bool           `json:"cached,omitempty"`
	// Partial marks an element the daemon's job deadline cut short:
	// Error carries the deadline error, Result the partial state.
	Partial bool `json:"partial,omitempty"`
}

// batchRequest is the POST /v1/batch payload.
type batchRequest struct {
	Jobs    []rbcast.Job `json:"jobs"`
	Workers int          `json:"workers,omitempty"`
}

// sweepRequest is the POST /v1/sweep payload.
type sweepRequest struct {
	Base    rbcast.Job       `json:"base"`
	Axes    rbcast.SweepAxes `json:"axes"`
	Workers int              `json:"workers,omitempty"`
}

// SweepResult is a completed /v1/sweep call: per-element outcomes in grid
// order plus the daemon's sweep-engine statistics for the executed
// elements.
type SweepResult struct {
	// Elements are the per-element outcomes, index-aligned with
	// SweepSpec.Elements expansion order (placements outermost, crash
	// rounds innermost).
	Elements []SweepElement
	// Stats reports the incremental engine's sharing for this sweep's
	// cache misses.
	Stats rbcast.SweepStats
}

// SweepElement is one sweep element's outcome.
type SweepElement struct {
	Index       int            `json:"index"`
	Fingerprint string         `json:"fingerprint"`
	Result      *rbcast.Result `json:"result,omitempty"`
	Error       string         `json:"error,omitempty"`
	// Cached reports the daemon served the element from its result cache
	// without simulating.
	Cached bool `json:"cached,omitempty"`
	// Partial marks an element the daemon's job deadline cut short.
	Partial bool `json:"partial,omitempty"`
}

// Run executes one scenario synchronously, retrying shed requests.
func (c *Client) Run(ctx context.Context, cfg rbcast.Config, plan rbcast.FaultPlan) (RunResult, error) {
	body, err := json.Marshal(rbcast.Job{Config: cfg, Plan: plan})
	if err != nil {
		return RunResult{}, fmt.Errorf("client: encoding scenario: %w", err)
	}
	var out RunResult
	hdr, data, err := c.do(ctx, http.MethodPost, "/v1/run", body, true)
	if err != nil {
		return RunResult{}, err
	}
	if err := json.Unmarshal(data, &out); err != nil {
		return RunResult{}, fmt.Errorf("client: decoding run response: %w", err)
	}
	out.Cached = hdr.Get("X-Rbcast-Cache") == "hit"
	return out, nil
}

// Submit enqueues a batch job, retrying submissions the daemon sheds.
// workers ≤ 0 leaves the pool size to the daemon.
func (c *Client) Submit(ctx context.Context, jobs []rbcast.Job, workers int) (BatchAck, error) {
	body, err := json.Marshal(batchRequest{Jobs: jobs, Workers: workers})
	if err != nil {
		return BatchAck{}, fmt.Errorf("client: encoding batch: %w", err)
	}
	var ack BatchAck
	_, data, err := c.do(ctx, http.MethodPost, "/v1/batch", body, false)
	if err != nil {
		return BatchAck{}, err
	}
	if err := json.Unmarshal(data, &ack); err != nil {
		return BatchAck{}, fmt.Errorf("client: decoding batch ack: %w", err)
	}
	return ack, nil
}

// Sweep plans and executes a parameter grid on the daemon, retrying shed
// requests. The daemon expands base × axes server-side, serves cached
// elements without simulating, and shares work across the rest through the
// incremental sweep engine; every element is byte-identical to an
// independent Run. workers ≤ 0 leaves the pool size to the daemon.
func (c *Client) Sweep(ctx context.Context, base rbcast.Job, axes rbcast.SweepAxes, workers int) (SweepResult, error) {
	body, err := json.Marshal(sweepRequest{Base: base, Axes: axes, Workers: workers})
	if err != nil {
		return SweepResult{}, fmt.Errorf("client: encoding sweep: %w", err)
	}
	_, data, err := c.do(ctx, http.MethodPost, "/v1/sweep", body, true)
	if err != nil {
		return SweepResult{}, err
	}
	return parseSweepStream(data)
}

// parseSweepStream decodes the /v1/sweep NDJSON body: a header line with
// the planned element count, one line per element, and a stats trailer.
func parseSweepStream(data []byte) (SweepResult, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	var header struct {
		Elements int `json:"elements"`
	}
	if err := dec.Decode(&header); err != nil {
		return SweepResult{}, fmt.Errorf("client: decoding sweep header: %w", err)
	}
	out := SweepResult{Elements: make([]SweepElement, 0, header.Elements)}
	for i := 0; i < header.Elements; i++ {
		var el SweepElement
		if err := dec.Decode(&el); err != nil {
			return SweepResult{}, fmt.Errorf("client: decoding sweep element %d: %w", i, err)
		}
		out.Elements = append(out.Elements, el)
	}
	var trailer struct {
		Stats rbcast.SweepStats `json:"stats"`
	}
	if err := dec.Decode(&trailer); err != nil {
		return SweepResult{}, fmt.Errorf("client: decoding sweep stats: %w", err)
	}
	out.Stats = trailer.Stats
	return out, nil
}

// Job fetches a batch job's status.
func (c *Client) Job(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	_, data, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, true)
	if err != nil {
		return JobStatus{}, err
	}
	if err := json.Unmarshal(data, &st); err != nil {
		return JobStatus{}, fmt.Errorf("client: decoding job status: %w", err)
	}
	return st, nil
}

// ProgressEvent mirrors one GET /v1/jobs/{id}/events NDJSON line: a
// cumulative, monotone snapshot of a batch job's execution.
type ProgressEvent struct {
	State      string `json:"state"` // "running" or "done"
	JobsDone   int    `json:"jobs_done"`
	JobsTotal  int    `json:"jobs_total"`
	NodeRounds int64  `json:"node_rounds"`
	DedupHits  int    `json:"dedup_hits"`
	Errors     int    `json:"errors"`
}

// Done reports whether this is the terminal event.
func (e ProgressEvent) Done() bool { return e.State == "done" }

// WatchJob streams a batch job's live progress from
// GET /v1/jobs/{id}/events, calling onEvent (may be nil) for each advance,
// and returns the final job status once the stream reports the terminal
// state. A truncated stream — the daemon's keep-alive cadence outlives the
// HTTP client's request timeout, proxies drop idle connections — is
// reconnected transparently; duplicate snapshots straddling a reconnect
// are suppressed, so onEvent still sees a monotone sequence. The retry
// budget (Options.MaxRetries) only counts reconnects that yielded no new
// events; a live, advancing stream can be watched indefinitely under ctx.
func (c *Client) WatchJob(ctx context.Context, id string, onEvent func(ProgressEvent)) (JobStatus, error) {
	var last ProgressEvent
	seen := false
	stalls := 0
	for {
		terminal, progressed, err := c.watchOnce(ctx, id, &last, &seen, onEvent)
		if terminal {
			// The terminal event closed the stream; fetch the results.
			return c.Job(ctx, id)
		}
		var se *StatusError
		if errors.As(err, &se) && !se.Temporary() {
			return JobStatus{}, err
		}
		if ctx.Err() != nil {
			return JobStatus{}, fmt.Errorf("client: watching job %s: %w (last failure: %v)", id, ctx.Err(), err)
		}
		if progressed {
			stalls = 0
		} else {
			stalls++
			if stalls > c.maxRetries {
				return JobStatus{}, fmt.Errorf("client: watching job %s: no progress after %d reconnects: %w", id, stalls, err)
			}
		}
		wait := c.backoff(stalls)
		if se != nil && se.RetryAfter > 0 && se.RetryAfter < c.maxBackoff {
			wait = se.RetryAfter
		}
		if err := c.sleep(ctx, wait); err != nil {
			return JobStatus{}, fmt.Errorf("client: watching job %s: %w", id, err)
		}
	}
}

// watchOnce runs one events-stream connection: it emits monotone advances
// to onEvent and reports whether the terminal event arrived and whether
// any new event did. Any other return is a truncated or refused stream,
// with err saying why.
func (c *Client) watchOnce(ctx context.Context, id string, last *ProgressEvent, seen *bool, onEvent func(ProgressEvent)) (terminal, progressed bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return false, false, fmt.Errorf("client: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return false, false, fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		data, _ := io.ReadAll(resp.Body)
		return false, false, &StatusError{
			Code:       resp.StatusCode,
			Message:    errorMessage(data),
			RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
			RequestID:  resp.Header.Get("X-Request-Id"),
		}
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var ev ProgressEvent
		if derr := dec.Decode(&ev); derr != nil {
			return false, progressed, fmt.Errorf("client: job %s event stream: %w", id, derr)
		}
		// Heartbeat repeats and the replayed first snapshot after a
		// reconnect carry nothing new — suppress them.
		if !*seen || ev != *last {
			*last, *seen = ev, true
			progressed = true
			if onEvent != nil {
				onEvent(ev)
			}
		}
		if ev.Done() {
			return true, progressed, nil
		}
	}
}

// WaitJob polls a batch job until it is done or ctx expires. poll ≤ 0
// defaults to 50ms.
func (c *Client) WaitJob(ctx context.Context, id string, poll time.Duration) (JobStatus, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return JobStatus{}, err
		}
		if st.Done() {
			return st, nil
		}
		if err := c.sleep(ctx, poll); err != nil {
			return JobStatus{}, fmt.Errorf("client: waiting for job %s: %w", id, err)
		}
	}
}

// Health checks GET /healthz.
func (c *Client) Health(ctx context.Context) error {
	_, _, err := c.do(ctx, http.MethodGet, "/healthz", nil, true)
	return err
}

// Metrics fetches the Prometheus exposition text.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	_, data, err := c.do(ctx, http.MethodGet, "/metrics", nil, true)
	return string(data), err
}

// RequestSpan is one span in a flight-recorder timeline. Parent indexes
// the enclosing timeline's Spans (-1 for the root span at index 0).
type RequestSpan struct {
	Name            string            `json:"name"`
	Parent          int               `json:"parent"`
	StartSeconds    float64           `json:"start_seconds"`
	DurationSeconds float64           `json:"duration_seconds"`
	Attrs           map[string]string `json:"attrs,omitempty"`
}

// RequestTimeline is one recorded request's span timeline. ID matches the
// X-Request-Id the daemon echoed to the client (or the job id for
// asynchronous batch executions).
type RequestTimeline struct {
	ID              string        `json:"id"`
	Route           string        `json:"route"`
	Status          int           `json:"status,omitempty"`
	Begin           time.Time     `json:"begin"`
	DurationSeconds float64       `json:"duration_seconds"`
	Spans           []RequestSpan `json:"spans"`
	DroppedSpans    int           `json:"dropped_spans,omitempty"`
}

// DebugRequests mirrors the GET /debug/requests body.
type DebugRequests struct {
	Enabled  bool              `json:"enabled"`
	Capacity int               `json:"capacity"`
	Stored   int               `json:"stored"`
	Total    uint64            `json:"total"`
	Requests []RequestTimeline `json:"requests"`
}

// DebugRequests fetches the daemon's flight recorder. query is a raw
// query string ("" for all retained timelines, newest first): "n=K" caps
// the count, "sort=slowest" orders by duration, "min_ms=D" filters fast
// requests out.
func (c *Client) DebugRequests(ctx context.Context, query string) (DebugRequests, error) {
	path := "/debug/requests"
	if query != "" {
		path += "?" + query
	}
	var out DebugRequests
	_, data, err := c.do(ctx, http.MethodGet, path, nil, true)
	if err != nil {
		return DebugRequests{}, err
	}
	if err := json.Unmarshal(data, &out); err != nil {
		return DebugRequests{}, fmt.Errorf("client: decoding debug requests: %w", err)
	}
	return out, nil
}

// do issues one request with the retry loop: temporary daemon failures
// (429/503) and transport errors back off and re-attempt, honoring
// Retry-After when present; everything else returns immediately. The body
// is replayed from the encoded bytes on every attempt.
//
// idempotent declares whether a duplicate delivery of this request is
// harmless. For non-idempotent requests a transport error is only retried
// when it proves the daemon never received the request (the dial itself
// failed); an ambiguous failure — connection reset mid-body, a timeout
// waiting for the response — returns immediately, because the first copy
// may have been accepted and a blind retry would duplicate it. Status
// errors are unaffected: a daemon that answered 429/503 is confirming it
// did not accept the request.
func (c *Client) do(ctx context.Context, method, path string, body []byte, idempotent bool) (http.Header, []byte, error) {
	var last error
	for attempt := 0; ; attempt++ {
		hdr, data, err := c.once(ctx, method, path, body)
		if err == nil {
			return hdr, data, nil
		}
		last = err
		wait := time.Duration(0)
		var se *StatusError
		if errors.As(err, &se) {
			if !se.Temporary() {
				return nil, nil, err
			}
			wait = se.RetryAfter
		} else {
			// Transport error: no daemon answer at all.
			if c.failfast {
				return nil, nil, last
			}
			if !idempotent && !confirmsNonReceipt(err) {
				return nil, nil, fmt.Errorf(
					"client: not retrying %s %s after an ambiguous transport failure (the request may have been accepted): %w",
					method, path, err)
			}
		}
		if ctx.Err() != nil || attempt >= c.maxRetries {
			return nil, nil, last
		}
		if wait <= 0 {
			wait = c.backoff(attempt)
		}
		if wait > c.maxBackoff {
			wait = c.maxBackoff
		}
		if err := c.sleep(ctx, wait); err != nil {
			return nil, nil, fmt.Errorf("client: %w (last failure: %v)", err, last)
		}
	}
}

// confirmsNonReceipt reports whether a transport error proves the server
// never received the request. Only a failed dial qualifies: the
// connection was never established, so no bytes reached the daemon. A
// reset mid-body, a broken pipe, or a response timeout all leave open the
// possibility that the daemon read the full request and acted on it.
func confirmsNonReceipt(err error) bool {
	var oe *net.OpError
	return errors.As(err, &oe) && oe.Op == "dial"
}

// once issues a single attempt.
func (c *Client) once(ctx context.Context, method, path string, body []byte) (http.Header, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, nil, fmt.Errorf("client: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, nil, fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, fmt.Errorf("client: reading response: %w", err)
	}
	if resp.StatusCode >= 400 {
		return nil, nil, &StatusError{
			Code:       resp.StatusCode,
			Message:    errorMessage(data),
			RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
			RequestID:  resp.Header.Get("X-Request-Id"),
		}
	}
	return resp.Header, data, nil
}

// backoff computes the jittered exponential delay for a retry attempt:
// full jitter over [d/2, d) where d doubles from BaseBackoff, capped at
// MaxBackoff. Jitter decorrelates a fleet of clients that were all shed by
// the same saturated daemon at the same instant.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.baseBackoff
	for i := 0; i < attempt && d < c.maxBackoff; i++ {
		d *= 2
	}
	if d > c.maxBackoff {
		d = c.maxBackoff
	}
	half := d / 2
	return half + time.Duration(c.jitter()*float64(half))
}

// parseRetryAfter reads a Retry-After value: delta-seconds or an HTTP-date.
// Values that ask for no wait — negative delta-seconds, an HTTP-date in the
// past, or garbage — clamp to 0; a negative duration must never escape here,
// or it would skew the backoff cap arithmetic in retry loops.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
		return 0
	}
	return 0
}

// errorMessage extracts the daemon's uniform {"error": "..."} body, falling
// back to the raw text for anything else.
func errorMessage(data []byte) string {
	var er struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(data, &er); err == nil && er.Error != "" {
		return er.Error
	}
	return strings.TrimSpace(string(data))
}

// sleepCtx waits d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
