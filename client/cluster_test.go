package client

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	rbcast "repro"
	"repro/internal/server"
)

// faultTransport injects transport-level failures by attempt number,
// delegating clean attempts to the default transport.
type faultTransport struct {
	fail  func(attempt int) error
	calls atomic.Int32
}

func (t *faultTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if err := t.fail(int(t.calls.Add(1))); err != nil {
		// Drain the body like a real transport that died mid-write would:
		// the bytes left the client before the connection reset.
		if r.Body != nil {
			r.Body.Close()
		}
		return nil, err
	}
	return http.DefaultTransport.RoundTrip(r)
}

// resetError mimics a connection reset after the request started — the
// ambiguous case where the daemon may have received and acted on it.
func resetError() error {
	return &net.OpError{Op: "read", Net: "tcp", Err: errors.New("connection reset by peer")}
}

// dialError mimics a refused dial — proof the daemon never saw anything.
func dialError() error {
	return &net.OpError{Op: "dial", Net: "tcp", Err: errors.New("connection refused")}
}

// TestSubmitNotRetriedAfterAmbiguousFailure: a batch submission is not
// idempotent — each accepted copy creates a new job — so a connection
// reset mid-request must fail immediately instead of retrying a request
// the daemon may already have accepted.
func TestSubmitNotRetriedAfterAmbiguousFailure(t *testing.T) {
	ts := httptest.NewServer(server.New(server.Options{}))
	defer ts.Close()
	ft := &faultTransport{fail: func(int) error { return resetError() }}
	var sleeps []time.Duration
	c := recordingClient(ts.URL, Options{HTTPClient: &http.Client{Transport: ft}}, &sleeps)

	_, err := c.Submit(context.Background(), []rbcast.Job{testScenario()}, 0)
	if err == nil || !strings.Contains(err.Error(), "not retrying") {
		t.Fatalf("err = %v, want the ambiguous-failure refusal", err)
	}
	if got := ft.calls.Load(); got != 1 {
		t.Errorf("transport saw %d attempts, want exactly 1", got)
	}
	if len(sleeps) != 0 {
		t.Errorf("sleeps = %v, want none", sleeps)
	}
}

// TestSubmitRetriedAfterDialFailure: a failed dial proves non-receipt, so
// the submission is safe to retry even though it is not idempotent.
func TestSubmitRetriedAfterDialFailure(t *testing.T) {
	ts := httptest.NewServer(server.New(server.Options{}))
	defer ts.Close()
	ft := &faultTransport{fail: func(attempt int) error {
		if attempt <= 2 {
			return dialError()
		}
		return nil
	}}
	var sleeps []time.Duration
	c := recordingClient(ts.URL, Options{HTTPClient: &http.Client{Transport: ft}}, &sleeps)

	ack, err := c.Submit(context.Background(), []rbcast.Job{testScenario()}, 0)
	if err != nil {
		t.Fatalf("Submit after dial retries: %v", err)
	}
	if ack.ID == "" || ack.Jobs != 1 {
		t.Fatalf("ack = %+v", ack)
	}
	if got := ft.calls.Load(); got != 3 {
		t.Errorf("transport saw %d attempts, want 3", got)
	}
}

// TestRunRetriedAfterAmbiguousFailure: runs are idempotent (deterministic
// and cached by fingerprint), so even the ambiguous reset retries.
func TestRunRetriedAfterAmbiguousFailure(t *testing.T) {
	ts := httptest.NewServer(server.New(server.Options{}))
	defer ts.Close()
	ft := &faultTransport{fail: func(attempt int) error {
		if attempt == 1 {
			return resetError()
		}
		return nil
	}}
	var sleeps []time.Duration
	c := recordingClient(ts.URL, Options{HTTPClient: &http.Client{Transport: ft}}, &sleeps)

	job := testScenario()
	got, err := c.Run(context.Background(), job.Config, job.Plan)
	if err != nil {
		t.Fatalf("Run after reset retry: %v", err)
	}
	if got.Fingerprint != job.Fingerprint() {
		t.Errorf("fingerprint %q", got.Fingerprint)
	}
	if ft.calls.Load() != 2 {
		t.Errorf("transport saw %d attempts, want 2", ft.calls.Load())
	}
}

// clusterFleet boots n independent daemons (the daemons need no cluster
// config for client-side routing tests — the client picks the node) and
// returns their servers, URLs, and per-node execution counters.
func clusterFleet(t *testing.T, n int) ([]*httptest.Server, []string, []*atomic.Int32) {
	t.Helper()
	servers := make([]*httptest.Server, n)
	urls := make([]string, n)
	counts := make([]*atomic.Int32, n)
	for i := range servers {
		runs := &atomic.Int32{}
		counts[i] = runs
		servers[i] = httptest.NewServer(server.New(server.Options{
			Runner: func(ctx context.Context, cfg rbcast.Config, plan rbcast.FaultPlan) (rbcast.Result, error) {
				runs.Add(1)
				return rbcast.RunContext(ctx, cfg, plan)
			},
		}))
		urls[i] = servers[i].URL
		t.Cleanup(servers[i].Close)
	}
	return servers, urls, counts
}

func TestClusterRunRoutesToOwner(t *testing.T) {
	_, urls, counts := clusterFleet(t, 3)
	cc, err := NewCluster(urls, Options{})
	if err != nil {
		t.Fatal(err)
	}
	job := testScenario()
	owner := cc.Owner(job.Config, job.Plan)
	ownerIdx := -1
	for i, u := range urls {
		if u == owner {
			ownerIdx = i
		}
	}
	if ownerIdx < 0 {
		t.Fatalf("owner %q is not a fleet member", owner)
	}

	got, err := cc.Run(context.Background(), job.Config, job.Plan)
	if err != nil {
		t.Fatalf("cluster Run: %v", err)
	}
	if got.Fingerprint != job.Fingerprint() {
		t.Errorf("fingerprint %q", got.Fingerprint)
	}
	for i, c := range counts {
		want := int32(0)
		if i == ownerIdx {
			want = 1
		}
		if c.Load() != want {
			t.Errorf("node %d executed %d times, want %d", i, c.Load(), want)
		}
	}
	// The result is resident exactly on the owner.
	resident := 0
	for _, u := range urls {
		if _, ok, err := cc.Client(u).CachedResult(context.Background(), job.Fingerprint()); err != nil {
			t.Fatal(err)
		} else if ok {
			resident++
			if u != owner {
				t.Errorf("fingerprint resident on non-owner %s", u)
			}
		}
	}
	if resident != 1 {
		t.Errorf("fingerprint resident on %d nodes, want 1", resident)
	}
}

func TestClusterRunFailsOverToSuccessor(t *testing.T) {
	servers, urls, counts := clusterFleet(t, 3)
	cc, err := NewCluster(urls, Options{})
	if err != nil {
		t.Fatal(err)
	}
	job := testScenario()
	owner := cc.Owner(job.Config, job.Plan)
	for i, u := range urls {
		if u == owner {
			servers[i].Close() // the owner goes dark
		}
	}

	got, err := cc.Run(context.Background(), job.Config, job.Plan)
	if err != nil {
		t.Fatalf("cluster Run with dead owner: %v", err)
	}
	if got.Fingerprint != job.Fingerprint() {
		t.Errorf("fingerprint %q", got.Fingerprint)
	}
	executed := 0
	for i, c := range counts {
		executed += int(c.Load())
		if urls[i] == owner && c.Load() != 0 {
			t.Error("the closed owner executed a run")
		}
	}
	if executed != 1 {
		t.Errorf("%d executions across the fleet, want 1 on the failover node", executed)
	}
}

// TestClusterRunStatusErrorEndsFailover: a member that answers with a
// terminal status speaks for the fleet — a bad scenario must not be
// re-offered to every node.
func TestClusterRunStatusErrorEndsFailover(t *testing.T) {
	var calls atomic.Int32
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":"invalid scenario"}`))
	})
	a, b := httptest.NewServer(h), httptest.NewServer(h)
	defer a.Close()
	defer b.Close()
	cc, err := NewCluster([]string{a.URL, b.URL}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	job := testScenario()
	_, err = cc.Run(context.Background(), job.Config, job.Plan)
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("err = %v, want StatusError 400", err)
	}
	if calls.Load() != 1 {
		t.Errorf("fleet saw %d attempts, want 1 (no failover on a daemon verdict)", calls.Load())
	}
}

// TestClientFollowsRedirect: a daemon running -redirect answers 307; the
// client must replay the POST body to the Location target. The redirect
// target is a real daemon, the front is a stub that only redirects.
func TestClientFollowsRedirect(t *testing.T) {
	backend := httptest.NewServer(server.New(server.Options{}))
	defer backend.Close()
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Location", backend.URL+"/v1/run")
		w.WriteHeader(http.StatusTemporaryRedirect)
	}))
	defer front.Close()

	c := New(front.URL, Options{})
	job := testScenario()
	got, err := c.Run(context.Background(), job.Config, job.Plan)
	if err != nil {
		t.Fatalf("Run through redirect: %v", err)
	}
	if got.Fingerprint != job.Fingerprint() {
		t.Errorf("fingerprint %q, want %q", got.Fingerprint, job.Fingerprint())
	}
}

func TestCachedResultProbe(t *testing.T) {
	ts := httptest.NewServer(server.New(server.Options{}))
	defer ts.Close()
	c := New(ts.URL, Options{})
	job := testScenario()

	if _, ok, err := c.CachedResult(context.Background(), job.Fingerprint()); err != nil || ok {
		t.Fatalf("probe before run: ok=%v err=%v, want a clean miss", ok, err)
	}
	if _, err := c.Run(context.Background(), job.Config, job.Plan); err != nil {
		t.Fatal(err)
	}
	got, ok, err := c.CachedResult(context.Background(), job.Fingerprint())
	if err != nil || !ok {
		t.Fatalf("probe after run: ok=%v err=%v", ok, err)
	}
	if got.Fingerprint != job.Fingerprint() || got.Result.Rounds == 0 {
		t.Errorf("probe returned %+v", got)
	}
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(nil, Options{}); err == nil {
		t.Error("empty fleet accepted")
	}
	if _, err := NewCluster([]string{"http://a:1", "http://a:1"}, Options{}); err == nil {
		t.Error("duplicate members accepted")
	}
}
