package rbcast

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// traceScenario is the canonical traced scenario for golden and behavior
// tests: BV4 at the configured threshold with a greedy silent band, on a
// grid small enough to keep the golden file reviewable. Sequential engine,
// so the trace is fully deterministic.
func traceScenario() (Config, FaultPlan) {
	cfg := Config{Width: 8, Height: 6, Radius: 1, Protocol: ProtocolBV4, T: 2, Value: 1, Trace: true}
	plan := FaultPlan{Placement: PlaceGreedyBand, Strategy: StrategySilent}
	return cfg, plan
}

func TestTraceEnumTextRoundTrip(t *testing.T) {
	kinds := []EventKind{0, EventBroadcast, EventDelivery, EventEvidenceEval, EventCrash, EventSpoof, EventCommit}
	for _, v := range kinds {
		text, err := v.MarshalText()
		if err != nil {
			t.Fatalf("EventKind(%d).MarshalText: %v", v, err)
		}
		var back EventKind
		if err := back.UnmarshalText(text); err != nil || back != v {
			t.Errorf("EventKind %d round-trips to %d (err %v)", v, back, err)
		}
	}
	rules := []CommitRule{0, RuleSource, RuleDirect, RuleQuorum, RuleDisjointChains, RuleVotes, RuleFlood}
	for _, v := range rules {
		text, err := v.MarshalText()
		if err != nil {
			t.Fatalf("CommitRule(%d).MarshalText: %v", v, err)
		}
		var back CommitRule
		if err := back.UnmarshalText(text); err != nil || back != v {
			t.Errorf("CommitRule %d round-trips to %d (err %v)", v, back, err)
		}
	}
	if _, err := EventKind(99).MarshalText(); err == nil {
		t.Error("invalid event kind must not marshal")
	}
	if _, err := CommitRule(99).MarshalText(); err == nil {
		t.Error("invalid commit rule must not marshal")
	}
	var k EventKind
	if err := k.UnmarshalText([]byte("teleport")); err == nil {
		t.Error("unknown event kind name must not unmarshal")
	}
	var r CommitRule
	if err := r.UnmarshalText([]byte("vibes")); err == nil {
		t.Error("unknown commit rule name must not unmarshal")
	}
}

func TestConfigTraceJSONRoundTrip(t *testing.T) {
	cfg := Config{Width: 8, Height: 6, Radius: 1, Protocol: ProtocolFlood, Trace: true}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"trace":true`) {
		t.Errorf("traced config marshals to %s, want a trace key", data)
	}
	var back Config
	if err := json.Unmarshal(data, &back); err != nil || back != cfg {
		t.Errorf("traced config round-trips to %+v (err %v)", back, err)
	}
}

// TestTraceOffByDefault pins the opt-in contract: without Config.Trace the
// result carries no trace, Explain refuses, and certificates are absent.
func TestTraceOffByDefault(t *testing.T) {
	cfg, plan := traceScenario()
	cfg.Trace = false
	res, err := Run(cfg, plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Fatalf("untraced run recorded %d events", len(res.Trace))
	}
	if _, err := Explain(res, Node{}); err == nil {
		t.Error("Explain must refuse an untraced result")
	}
	if cert := res.CommitCertificate(Node{}); cert != nil {
		t.Error("untraced result returned a certificate")
	}
}

// TestTraceGoldenJSONL pins the traced scenario's full JSONL encoding
// byte-for-byte, then proves the encoding lossless: decode → deep-equal →
// re-encode → byte-identical.
func TestTraceGoldenJSONL(t *testing.T) {
	cfg, plan := traceScenario()
	res, err := Run(cfg, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("traced run recorded no events")
	}

	var buf bytes.Buffer
	if err := EncodeTrace(&buf, res.Trace); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()

	golden := filepath.Join("testdata", "trace_bv4.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run `go test -run TestTraceGoldenJSONL -update ./` to create it): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("trace JSONL drifted from %s (%d vs %d bytes)", golden, len(got), len(want))
	}

	back, err := DecodeTrace(bytes.NewReader(got))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Trace, back) {
		t.Fatal("trace does not survive an encode/decode round trip")
	}
	var again bytes.Buffer
	if err := EncodeTrace(&again, back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, again.Bytes()) {
		t.Fatal("re-encoding a decoded trace is not byte-identical")
	}
}

func TestDecodeTraceSkipsBlankLinesAndRejectsGarbage(t *testing.T) {
	events, err := DecodeTrace(strings.NewReader("\n{\"round\":1,\"kind\":\"crash\",\"node\":\"2,3\"}\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Kind != EventCrash || events[0].Node != (Node{X: 2, Y: 3}) {
		t.Fatalf("decoded %+v", events)
	}
	if _, err := DecodeTrace(strings.NewReader("not json\n")); err == nil {
		t.Error("garbage line must not decode")
	}
	if events, err := DecodeTrace(strings.NewReader("")); err != nil || events != nil {
		t.Errorf("empty stream decoded to %v, %v", events, err)
	}
}

func TestExplain(t *testing.T) {
	cfg, plan := traceScenario()
	res, err := Run(cfg, plan)
	if err != nil {
		t.Fatal(err)
	}

	// The source explains as a fiat commit.
	out, err := Explain(res, Node{X: cfg.SourceX, Y: cfg.SourceY})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `rule "source"`) {
		t.Errorf("source explanation lacks the source rule:\n%s", out)
	}

	// Every decided node explains with its rule named; undecided honest
	// nodes and faulty nodes explain without error.
	sawQuorum := false
	for n, d := range res.Decisions {
		out, err := Explain(res, n)
		if err != nil {
			t.Fatalf("Explain(%v): %v", n, err)
		}
		switch {
		case d.Decided && !strings.Contains(out, "committed value"):
			t.Errorf("decided node %v explanation lacks its commit:\n%s", n, out)
		case !d.Decided && !strings.Contains(out, "never committed"):
			t.Errorf("undecided node %v explanation is wrong:\n%s", n, out)
		}
		if strings.Contains(out, `rule "quorum"`) {
			sawQuorum = true
		}
	}
	if !sawQuorum {
		t.Error("no node explained via the quorum rule in a BV4 run")
	}

	// Unknown nodes are an error, not a silent "never committed".
	if _, err := Explain(res, Node{X: 1000, Y: 1000}); err == nil {
		t.Error("Explain must reject a node outside the network")
	}
}

// TestFingerprintTraceSensitivity: tracing changes the fingerprint (a
// traced result is a different cacheable artifact), while untraced
// scenarios keep their pre-trace fingerprints (pinned by
// TestFingerprintGolden).
func TestFingerprintTraceSensitivity(t *testing.T) {
	cfg, plan := traceScenario()
	traced := Job{Config: cfg, Plan: plan}
	untraced := traced
	untraced.Config.Trace = false
	if traced.Fingerprint() == untraced.Fingerprint() {
		t.Error("enabling Trace did not change the fingerprint")
	}
}

// TestTraceCrashEventsLeadTheTrace: crash schedules come from the fault
// plan, recorded before round 0 engine events, in node-id order.
func TestTraceCrashEventsLeadTheTrace(t *testing.T) {
	cfg := Config{Width: 8, Height: 6, Radius: 1, Protocol: ProtocolFlood, Value: 1, Trace: true}
	plan := FaultPlan{Placement: PlaceBand, Strategy: StrategyCrash, Count: 2, CrashRound: 3}
	res, err := Run(cfg, plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults == 0 {
		t.Fatal("plan placed no faults")
	}
	crashes := 0
	for i, ev := range res.Trace {
		if ev.Kind != EventCrash {
			break
		}
		crashes++
		if ev.Round != 3 {
			t.Errorf("crash event %d at round %d, want 3", i, ev.Round)
		}
	}
	if crashes != res.Faults {
		t.Errorf("trace leads with %d crash events, want %d", crashes, res.Faults)
	}
}

// TestTraceEngineEquivalence: the concurrent engine's trace contains the
// same commits (node, value, round) as the sequential engine's for the
// same scenario, even though within-round protocol-event interleaving
// differs.
func TestTraceEngineEquivalence(t *testing.T) {
	cfg, plan := traceScenario()
	cfg.LockStep = true // the concurrent engine is always lock-step
	seq, err := Run(cfg, plan)
	if err != nil {
		t.Fatal(err)
	}
	cfg.LockStep = false
	cfg.Concurrent = true
	conc, err := Run(cfg, plan)
	if err != nil {
		t.Fatal(err)
	}
	type commit struct {
		node  Node
		value byte
		round int
	}
	collect := func(res Result) map[commit]bool {
		out := make(map[commit]bool)
		for _, ev := range res.Trace {
			if ev.Kind == EventCommit {
				out[commit{ev.Node, ev.Value, ev.Round}] = true
			}
		}
		return out
	}
	if a, b := collect(seq), collect(conc); !reflect.DeepEqual(a, b) {
		t.Errorf("commit sets differ between engines: %d sequential vs %d concurrent", len(a), len(b))
	}
}
