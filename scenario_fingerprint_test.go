package rbcast_test

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"testing"

	rbcast "repro"
	"repro/internal/scenarios"
)

// updateScenarioFP regenerates testdata/scenario_fingerprints.golden from
// the current matrix. The torus entries in the committed file were captured
// BEFORE the topology.Graph refactor, so running the matrix through this
// test proves the refactor changed no torus fingerprint; regenerating must
// therefore be reviewed line by line — any change to an existing line
// silently invalidates every persistent cache keyed on Fingerprint.
var updateScenarioFP = flag.Bool("update-scenario-fingerprints", false,
	"rewrite testdata/scenario_fingerprints.golden from the current matrix")

// TestScenarioFingerprintsStable pins Job.Fingerprint() for every canonical
// scenario against testdata/scenario_fingerprints.golden. The torus entries
// predate the Graph interface refactor, so this is the refactor's
// compatibility gate: a torus scenario hashing differently means deployed
// rbcastd caches and recorded results no longer match their keys. The
// non-torus entries pin the new families' canonical encodings the same way.
func TestScenarioFingerprintsStable(t *testing.T) {
	const golden = "testdata/scenario_fingerprints.golden"
	matrix := scenarios.Matrix()

	if *updateScenarioFP {
		var b strings.Builder
		for _, sc := range matrix {
			fmt.Fprintf(&b, "%s\t%s\n", sc.Name, rbcast.Job{Config: sc.Config, Plan: sc.Plan}.Fingerprint())
		}
		if err := os.WriteFile(golden, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	want := loadGoldenFile(t, golden)
	seen := make(map[string]bool, len(want))
	for _, sc := range matrix {
		got := rbcast.Job{Config: sc.Config, Plan: sc.Plan}.Fingerprint()
		w, ok := want[sc.Name]
		if !ok {
			t.Errorf("%s: missing from %s — append it (go test -run TestScenarioFingerprintsStable -update-scenario-fingerprints ./) and verify no existing line changed", sc.Name, golden)
			continue
		}
		if got != w {
			t.Errorf("%s: fingerprint %s, golden %s — the canonical encoding drifted; persistent caches keyed on Fingerprint are invalidated", sc.Name, got, w)
		}
		seen[sc.Name] = true
	}
	var orphans []string
	for name := range want {
		if !seen[name] {
			orphans = append(orphans, name)
		}
	}
	sort.Strings(orphans)
	for _, name := range orphans {
		t.Errorf("golden entry %q has no scenario — matrix and golden file drifted", name)
	}
}

// TestNonTorusScenariosEndToEnd is the tentpole's acceptance check in test
// form: every non-torus scenario of the matrix runs through the public
// surface, produces a stable fingerprint, and reports a coherent Result
// (decisions keyed (id, 0), honest + faulty partitioning the graph).
func TestNonTorusScenariosEndToEnd(t *testing.T) {
	ran := 0
	families := map[rbcast.Topology]bool{}
	for _, sc := range scenarios.Matrix() {
		if sc.Config.Topology == 0 || sc.Config.Topology == rbcast.TopologyTorus {
			continue
		}
		sc := sc
		ran++
		families[sc.Config.Topology] = true
		t.Run(sc.Name, func(t *testing.T) {
			res, err := rbcast.Run(sc.Config, sc.Plan)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			size := len(res.Decisions)
			if size == 0 {
				t.Fatal("no decisions recorded")
			}
			if res.Honest+res.Faults != size {
				t.Errorf("honest %d + faults %d != %d nodes", res.Honest, res.Faults, size)
			}
			for n := range res.Decisions {
				if n.Y != 0 || n.X < 0 || n.X >= size {
					t.Fatalf("non-torus decision key %v, want (id, 0) with id in [0, %d)", n, size)
				}
			}
			if !res.Safe() {
				t.Errorf("flood/cpa/bracha under these plans must stay safe; got %d wrong", res.Wrong)
			}
		})
	}
	if ran < 2 || len(families) < 2 {
		t.Fatalf("matrix carries %d non-torus scenarios in %d families, want ≥ 2 scenarios across ≥ 2 families", ran, len(families))
	}
}
