package rbcast

import (
	"strings"
	"testing"
)

func TestProtocolString(t *testing.T) {
	tests := []struct {
		p    Protocol
		want string
	}{
		{ProtocolFlood, "flood"},
		{ProtocolCPA, "cpa"},
		{ProtocolBV4, "bv4"},
		{ProtocolBV2, "bv2"},
		{Protocol(0), "Protocol(0)"},
	}
	for _, tt := range tests {
		if got := tt.p.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
}

func TestMetricString(t *testing.T) {
	tests := []struct {
		m    Metric
		want string
	}{
		{MetricLinf, "linf"},
		{MetricL2, "l2"},
		{Metric(0), "Metric(0)"},
		{Metric(9), "Metric(9)"},
	}
	for _, tt := range tests {
		if got := tt.m.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
}

func TestRunValidation(t *testing.T) {
	base := Config{Width: 12, Height: 12, Radius: 1, Protocol: ProtocolFlood, Value: 1}
	cases := []Config{
		{Width: 2, Height: 12, Radius: 1, Protocol: ProtocolFlood}, // torus too small
		{Width: 12, Height: 12, Radius: 1},                         // no protocol
		func() Config { c := base; c.Metric = Metric(9); return c }(),
		func() Config { c := base; c.Protocol = Protocol(9); return c }(),
	}
	for i, cfg := range cases {
		if _, err := Run(cfg, FaultPlan{}); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	if _, err := Run(base, FaultPlan{Placement: Placement(99)}); err == nil {
		t.Error("invalid placement must be rejected")
	}
	if _, err := Run(base, FaultPlan{Placement: PlaceBand, Strategy: Strategy(99)}); err == nil {
		t.Error("invalid strategy must be rejected")
	}
}

func TestConfigValidation(t *testing.T) {
	base := Config{Width: 12, Height: 12, Radius: 1, Protocol: ProtocolFlood, Value: 1}
	tests := []struct {
		name    string
		mutate  func(*Config)
		wantErr string // empty: must succeed
	}{
		{"value 2", func(c *Config) { c.Value = 2 }, "value must be 0 or 1"},
		{"value 255", func(c *Config) { c.Value = 255 }, "value must be 0 or 1"},
		{"negative T", func(c *Config) { c.T = -1 }, "negative fault bound"},
		{"negative loss rate", func(c *Config) { c.LossRate = -0.1 }, "loss rate"},
		{"loss rate 1", func(c *Config) { c.LossRate = 1 }, "loss rate"},
		{"loss rate 1.5", func(c *Config) { c.LossRate = 1.5 }, "loss rate"},
		{"negative retransmit", func(c *Config) { c.Retransmit = -1 }, "Retransmit"},
		{"negative max rounds", func(c *Config) { c.MaxRounds = -5 }, "MaxRounds"},
		{"max rounds 0 ok", func(c *Config) { c.MaxRounds = 0 }, ""},
		{"retransmit 0 ok", func(c *Config) { c.Retransmit = 0 }, ""},
		{"concurrent + lossy", func(c *Config) { c.Concurrent = true; c.LossRate = 0.2 }, "sequential engine"},
		{"concurrent + retransmit", func(c *Config) { c.Concurrent = true; c.Retransmit = 2 }, "Retransmit"},
		{"concurrent + medium seed", func(c *Config) { c.Concurrent = true; c.MediumSeed = 7 }, "MediumSeed"},
		{"concurrent + lock step", func(c *Config) { c.Concurrent = true; c.LockStep = true }, "LockStep"},
		{"sequential retransmit ok", func(c *Config) { c.Retransmit = 3; c.LossRate = 0.1 }, ""},
		{"concurrent retransmit 1 ok", func(c *Config) { c.Concurrent = true; c.Retransmit = 1 }, ""},
		{"value 0 ok", func(c *Config) { c.Value = 0 }, ""},
	}
	for _, tt := range tests {
		cfg := base
		tt.mutate(&cfg)
		_, err := Run(cfg, FaultPlan{})
		if tt.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tt.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: expected error containing %q", tt.name, tt.wantErr)
		} else if !strings.Contains(err.Error(), tt.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tt.name, err, tt.wantErr)
		}
	}
}

func TestMetricsReconcileWithTrafficStats(t *testing.T) {
	// The E25 message-complexity scenario: bv4 (earmarked) at r=1 against
	// the strongest greedy band. The metrics layer must agree with the
	// engine's headline counters exactly.
	cfg := Config{
		Width: 16, Height: 10, Radius: 1,
		Protocol: ProtocolBV4, T: MaxByzantineLinf(1), Value: 1,
	}
	res, err := Run(cfg, FaultPlan{Placement: PlaceGreedyBand, Strategy: StrategySilent})
	if err != nil {
		t.Fatal(err)
	}
	var b, d, commits int
	for _, rc := range res.Metrics.PerRound {
		b += rc.Broadcasts
		d += rc.Deliveries
		commits += rc.Commits
	}
	if b != res.Broadcasts {
		t.Errorf("per-round broadcasts sum %d != Broadcasts %d", b, res.Broadcasts)
	}
	if d != res.Deliveries {
		t.Errorf("per-round deliveries sum %d != Deliveries %d", d, res.Deliveries)
	}
	decided := 0
	commitRounds := make(map[int]int)
	for _, dec := range res.Decisions {
		if dec.Decided {
			decided++
			commitRounds[dec.Round]++
		}
	}
	if commits != decided || res.Metrics.Commits != decided {
		t.Errorf("commit counters %d/%d != decided nodes %d", commits, res.Metrics.Commits, decided)
	}
	got := res.Metrics.CommitRounds()
	for round, n := range commitRounds {
		if got[round] != n {
			t.Errorf("round %d: commit histogram %d, want %d", round, got[round], n)
		}
	}
	if res.Metrics.EvidenceEvals == 0 {
		t.Error("bv4 run recorded no evidence evaluations")
	}
	if res.Metrics.Wall <= 0 {
		t.Errorf("wall time %v not positive", res.Metrics.Wall)
	}
	if len(res.Metrics.PerRound) > res.Rounds+1 {
		t.Errorf("%d per-round buckets for %d rounds", len(res.Metrics.PerRound), res.Rounds)
	}
}

func TestMetricsAgreeAcrossEngines(t *testing.T) {
	// The concurrent runtime matches sim.ModeNextRound exactly, so every
	// counter except wall time must be identical.
	seq := Config{Width: 12, Height: 12, Radius: 1, Protocol: ProtocolBV2, T: 1, Value: 1, LockStep: true}
	plan := FaultPlan{Placement: PlaceRandomBounded, Strategy: StrategySilent, Seed: 3}
	sres, err := Run(seq, plan)
	if err != nil {
		t.Fatal(err)
	}
	conc := seq
	conc.LockStep = false
	conc.Concurrent = true
	cres, err := Run(conc, plan)
	if err != nil {
		t.Fatal(err)
	}
	if sres.Broadcasts != cres.Broadcasts || sres.Deliveries != cres.Deliveries {
		t.Errorf("traffic totals diverge: seq %d/%d conc %d/%d",
			sres.Broadcasts, sres.Deliveries, cres.Broadcasts, cres.Deliveries)
	}
	if sres.Metrics.Commits != cres.Metrics.Commits {
		t.Errorf("commit totals diverge: %d vs %d", sres.Metrics.Commits, cres.Metrics.Commits)
	}
	if sres.Metrics.EvidenceEvals != cres.Metrics.EvidenceEvals {
		t.Errorf("evidence evals diverge: %d vs %d", sres.Metrics.EvidenceEvals, cres.Metrics.EvidenceEvals)
	}
	if len(sres.Metrics.PerRound) != len(cres.Metrics.PerRound) {
		t.Fatalf("round histograms differ in length: %d vs %d",
			len(sres.Metrics.PerRound), len(cres.Metrics.PerRound))
	}
	for i := range sres.Metrics.PerRound {
		if sres.Metrics.PerRound[i] != cres.Metrics.PerRound[i] {
			t.Errorf("round %d: %+v vs %+v", i, sres.Metrics.PerRound[i], cres.Metrics.PerRound[i])
		}
	}
}

func TestFaultFreeRun(t *testing.T) {
	for _, p := range []Protocol{ProtocolFlood, ProtocolCPA, ProtocolBV2, ProtocolBV4} {
		res, err := Run(Config{
			Width: 12, Height: 12, Radius: 1, Protocol: p, Value: 1,
		}, FaultPlan{})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if !res.AllCorrect() {
			t.Errorf("%v fault-free: correct=%d wrong=%d undecided=%d",
				p, res.Correct, res.Wrong, res.Undecided)
		}
		if res.Honest != 144 || res.Faults != 0 {
			t.Errorf("%v: honest=%d faults=%d", p, res.Honest, res.Faults)
		}
		if len(res.Decisions) != 144 {
			t.Errorf("%v: decisions for %d nodes", p, len(res.Decisions))
		}
	}
}

func TestByzantineThresholdRun(t *testing.T) {
	r := 1
	cfg := Config{
		Width: 16, Height: 10, Radius: r,
		Protocol: ProtocolBV4,
		T:        MaxByzantineLinf(r),
		Value:    1,
	}
	res, err := Run(cfg, FaultPlan{Placement: PlaceGreedyBand, Strategy: StrategyForger})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllCorrect() {
		t.Errorf("BV4 at threshold: %+v", res)
	}
	if res.MaxFaultsPerNbd > cfg.T {
		t.Errorf("placement exceeded budget: %d > %d", res.MaxFaultsPerNbd, cfg.T)
	}
	if res.Faults == 0 {
		t.Error("greedy band placed no faults")
	}
}

func TestImpossibilityConstructionRun(t *testing.T) {
	r := 1
	cfg := Config{
		Width: 16, Height: 10, Radius: r,
		Protocol: ProtocolBV4,
		T:        MinImpossibleByzantineLinf(r),
		Value:    1,
	}
	res, err := Run(cfg, FaultPlan{Placement: PlaceCheckerboardBand, Strategy: StrategySilent})
	if err != nil {
		t.Fatal(err)
	}
	if res.AllCorrect() {
		t.Error("the Fig 13 construction must stall some nodes")
	}
	if !res.Safe() {
		t.Error("safety must hold even at the impossibility bound")
	}
	if res.MaxFaultsPerNbd != MinImpossibleByzantineLinf(r) {
		t.Errorf("construction density %d, want %d", res.MaxFaultsPerNbd, MinImpossibleByzantineLinf(r))
	}
}

func TestCrashPartitionRun(t *testing.T) {
	r := 1
	cfg := Config{Width: 16, Height: 10, Radius: r, Protocol: ProtocolFlood, Value: 1}
	res, err := Run(cfg, FaultPlan{Placement: PlaceBand, Strategy: StrategyCrash})
	if err != nil {
		t.Fatal(err)
	}
	if res.Undecided == 0 {
		t.Error("the Fig 8 band must partition the torus")
	}
	if res.Correct == 0 {
		t.Error("the source side must still be reached")
	}
}

func TestConcurrentMatchesSequential(t *testing.T) {
	cfg := Config{Width: 12, Height: 12, Radius: 1, Protocol: ProtocolBV2, T: 1, Value: 1}
	plan := FaultPlan{Placement: PlaceRandomBounded, Strategy: StrategySilent, Seed: 3}
	seq, err := Run(cfg, plan)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Concurrent = true
	conc, err := Run(cfg, plan)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Correct != conc.Correct || seq.Wrong != conc.Wrong || seq.Undecided != conc.Undecided {
		t.Errorf("engines disagree: seq %+v conc %+v", seq, conc)
	}
	for n, d := range seq.Decisions {
		cd := conc.Decisions[n]
		if d.Decided != cd.Decided || (d.Decided && d.Value != cd.Value) {
			t.Errorf("node %v: seq %+v conc %+v", n, d, cd)
		}
	}
}

func TestPercolationPlan(t *testing.T) {
	cfg := Config{Width: 16, Height: 16, Radius: 1, Protocol: ProtocolFlood, Value: 1}
	res, err := Run(cfg, FaultPlan{Placement: PlacePercolation, Probability: 0.15, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults == 0 {
		t.Error("percolation placed no faults")
	}
	frac := float64(res.Correct) / float64(res.Honest)
	if frac < 0.5 {
		t.Errorf("delivered fraction %v suspiciously low at p=0.15", frac)
	}
}

func TestThresholdAccessors(t *testing.T) {
	for r := 1; r <= 10; r++ {
		if MaxByzantineLinf(r)+1 != MinImpossibleByzantineLinf(r) {
			t.Errorf("r=%d: Byzantine bounds not adjacent", r)
		}
		if MaxCrashLinf(r)+1 != MinImpossibleCrashLinf(r) {
			t.Errorf("r=%d: crash bounds not adjacent", r)
		}
		if MaxCPALinf(r) > MaxByzantineLinf(r) {
			t.Errorf("r=%d: CPA bound above exact threshold", r)
		}
		if ApproxByzantineL2(r) >= ApproxImpossibleCrashL2(r) {
			t.Errorf("r=%d: L2 ordering broken", r)
		}
		_ = KooCPALinf(r)
		_ = ApproxImpossibleByzantineL2(r)
		_ = ApproxCrashL2(r)
	}
}

func TestNeighborhoodSize(t *testing.T) {
	if n, err := NeighborhoodSize(MetricLinf, 2); err != nil || n != 25 {
		t.Errorf("L∞ r=2: %d, %v", n, err)
	}
	if n, err := NeighborhoodSize(MetricL2, 2); err != nil || n != 13 {
		t.Errorf("L2 r=2: %d, %v", n, err)
	}
	if _, err := NeighborhoodSize(Metric(9), 2); err == nil {
		t.Error("invalid metric must error")
	}
}

func TestMaxFaultsPerNeighborhoodHelper(t *testing.T) {
	cfg := Config{Width: 16, Height: 10, Radius: 1, Protocol: ProtocolFlood, Value: 1}
	got, err := MaxFaultsPerNeighborhood(cfg, FaultPlan{Placement: PlaceBand})
	if err != nil {
		t.Fatal(err)
	}
	if want := MinImpossibleCrashLinf(1); got != want {
		t.Errorf("band density = %d, want %d", got, want)
	}
}

func TestNodeString(t *testing.T) {
	if got := (Node{X: 3, Y: -1}).String(); got != "(3,-1)" {
		t.Errorf("Node.String = %q", got)
	}
}

func TestRandomBoundedPlanPlacesFaults(t *testing.T) {
	// Regression: Count = 0 must mean "maximal placement", not "no faults".
	cfg := Config{Width: 16, Height: 16, Radius: 1, Protocol: ProtocolFlood, T: 1, Value: 1}
	res, err := Run(cfg, FaultPlan{Placement: PlaceRandomBounded, Strategy: StrategyCrash, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults == 0 {
		t.Error("maximal random placement placed no faults")
	}
	if res.MaxFaultsPerNbd > 1 {
		t.Errorf("budget violated: %d", res.MaxFaultsPerNbd)
	}
	// An explicit positive Count caps the placement.
	res2, err := Run(cfg, FaultPlan{Placement: PlaceRandomBounded, Strategy: StrategyCrash, Seed: 2, Count: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Faults > 3 {
		t.Errorf("count cap ignored: %d faults", res2.Faults)
	}
}

func TestSpoofingCollapseViaPublicAPI(t *testing.T) {
	cfg := Config{
		Width: 16, Height: 16, Radius: 1,
		Protocol: ProtocolBV4, T: 1, Value: 1,
	}
	plan := FaultPlan{Placement: PlaceRandomBounded, Strategy: StrategySpoofer, Seed: 2}
	authenticated, err := Run(cfg, plan)
	if err != nil {
		t.Fatal(err)
	}
	if !authenticated.AllCorrect() {
		t.Errorf("spoofers must be harmless under authentication: %+v", authenticated)
	}
	cfg.SpoofingPossible = true
	spoofable, err := Run(cfg, plan)
	if err != nil {
		t.Fatal(err)
	}
	if spoofable.Safe() {
		t.Error("spoofing must break safety (§X)")
	}
}

func TestLossyMediumViaPublicAPI(t *testing.T) {
	cfg := Config{
		Width: 12, Height: 12, Radius: 1,
		Protocol: ProtocolFlood, Value: 1,
		LossRate: 0.8, Retransmit: 10, MediumSeed: 4,
	}
	res, err := Run(cfg, FaultPlan{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllCorrect() {
		t.Errorf("10 retransmissions at 80%% loss: %+v", res)
	}
	cfg.Concurrent = true
	if _, err := Run(cfg, FaultPlan{}); err == nil {
		t.Error("lossy medium must be rejected on the concurrent engine")
	}
	cfg.Concurrent = false
	cfg.LossRate = 1.5
	if _, err := Run(cfg, FaultPlan{}); err == nil {
		t.Error("invalid loss rate must be rejected")
	}
}

func TestAgreePublicAPI(t *testing.T) {
	cfg := AgreementConfig{
		Width: 12, Height: 12, Radius: 1,
		Protocol: ProtocolBV4,
		T:        1,
		Committee: []Node{
			{X: 0, Y: 0}, {X: 6, Y: 0}, {X: 0, Y: 6},
		},
		Inputs:         []byte{1, 1, 0},
		ByzantineNodes: []Node{{X: 0, Y: 6}},
		Strategy:       StrategyLiar,
	}
	res, err := Agree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Agreement || !res.Validity {
		t.Errorf("agreement=%v validity=%v", res.Agreement, res.Validity)
	}
	for n, d := range res.Decisions {
		if d != 1 {
			t.Errorf("node %v decided %d, want 1", n, d)
		}
	}
	// Validation paths.
	bad := cfg
	bad.Inputs = []byte{1}
	if _, err := Agree(bad); err == nil {
		t.Error("mismatched inputs must be rejected")
	}
	bad2 := cfg
	bad2.Strategy = StrategySpoofer
	if _, err := Agree(bad2); err == nil {
		t.Error("spoofer strategy is not supported by Agree")
	}
}
