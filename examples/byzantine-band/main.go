// Byzantine-band: walk the exact Byzantine threshold of the paper. At
// t = ⌈r(2r+1)/2⌉ − 1 the indirect-report protocol delivers everywhere even
// against the strongest legal band adversary (Theorem 1); one fault more and
// the Fig 13 checkerboard construction stalls the far side of the network —
// while safety (no wrong commits) survives at both settings (Theorem 2).
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const r = 1
	base := rbcast.Config{
		Width:    16,
		Height:   10,
		Radius:   r,
		Protocol: rbcast.ProtocolBV4,
		Value:    1,
	}

	// Below the threshold: the greedy band adversary loses.
	achievable := base
	achievable.T = rbcast.MaxByzantineLinf(r)
	res, err := rbcast.Run(achievable, rbcast.FaultPlan{
		Placement: rbcast.PlaceGreedyBand,
		Strategy:  rbcast.StrategySilent,
	})
	if err != nil {
		log.Fatalf("byzantine-band: %v", err)
	}
	fmt.Printf("t = %d (< r(2r+1)/2): correct %d/%d, undecided %d → broadcast %v\n",
		achievable.T, res.Correct, res.Honest, res.Undecided, res.AllCorrect())

	// At the impossibility bound: the Fig 13 construction wins.
	impossible := base
	impossible.T = rbcast.MinImpossibleByzantineLinf(r)
	res2, err := rbcast.Run(impossible, rbcast.FaultPlan{
		Placement: rbcast.PlaceCheckerboardBand,
		Strategy:  rbcast.StrategySilent,
	})
	if err != nil {
		log.Fatalf("byzantine-band: %v", err)
	}
	fmt.Printf("t = %d (= ⌈r(2r+1)/2⌉): correct %d/%d, undecided %d → broadcast %v, safe %v\n",
		impossible.T, res2.Correct, res2.Honest, res2.Undecided, res2.AllCorrect(), res2.Safe())

	if res.AllCorrect() && !res2.AllCorrect() && res2.Safe() {
		fmt.Println("the threshold is exactly where Theorem 1 and Koo's impossibility meet")
	}
}
