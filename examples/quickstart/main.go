// Quickstart: run the paper's exact-threshold Byzantine broadcast protocol
// (Theorem 1) on a small torus with the strongest band adversary the locally
// bounded model allows, and verify that every honest node commits to the
// source's value.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const r = 1
	t := rbcast.MaxByzantineLinf(r) // largest tolerable t: ⌈r(2r+1)/2⌉ − 1

	cfg := rbcast.Config{
		Width:    16,
		Height:   10,
		Radius:   r,
		Protocol: rbcast.ProtocolBV4, // the 4-hop indirect-report protocol of §VI
		T:        t,
		Value:    1,
	}
	plan := rbcast.FaultPlan{
		Placement: rbcast.PlaceGreedyBand, // strongest legal band adversary
		Strategy:  rbcast.StrategyForger,  // lies and forges indirect reports
	}

	res, err := rbcast.Run(cfg, plan)
	if err != nil {
		log.Fatalf("quickstart: %v", err)
	}

	fmt.Printf("torus %dx%d, radius %d, fault bound t=%d (threshold: t < r(2r+1)/2)\n",
		cfg.Width, cfg.Height, r, t)
	fmt.Printf("adversary: %d forger nodes, at most %d per neighborhood\n",
		res.Faults, res.MaxFaultsPerNbd)
	fmt.Printf("outcome: %d/%d honest nodes committed correctly in %d rounds "+
		"(%d broadcasts)\n", res.Correct, res.Honest, res.Rounds, res.Broadcasts)
	if res.AllCorrect() {
		fmt.Println("reliable broadcast achieved — as Theorem 1 promises")
	} else {
		fmt.Printf("unexpected: wrong=%d undecided=%d\n", res.Wrong, res.Undecided)
	}
}
