// Crash-partition: the crash-stop threshold of Theorems 4 and 5. A width-r
// band of crashed nodes carries exactly t = r(2r+1) faults per neighborhood
// and partitions the torus (Fig 8); the strongest band the adversary can
// build with one fault less leaves every correct node reachable.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const r = 2
	cfg := rbcast.Config{
		Width:    32,
		Height:   18,
		Radius:   r,
		Protocol: rbcast.ProtocolFlood, // crash-stop needs no special protocol (§VII)
		Value:    1,
	}

	// Fig 8: full band ⇒ partition.
	res, err := rbcast.Run(cfg, rbcast.FaultPlan{
		Placement: rbcast.PlaceBand,
		Strategy:  rbcast.StrategyCrash,
	})
	if err != nil {
		log.Fatalf("crash-partition: %v", err)
	}
	fmt.Printf("full band: %d crashed (max %d = r(2r+1) per nbd) → reached %d, cut off %d\n",
		res.Faults, res.MaxFaultsPerNbd, res.Correct, res.Undecided)

	// One fault under the bound: greedy band cannot cut the torus.
	cfg.T = rbcast.MaxCrashLinf(r)
	res2, err := rbcast.Run(cfg, rbcast.FaultPlan{
		Placement: rbcast.PlaceGreedyBand,
		Strategy:  rbcast.StrategyCrash,
	})
	if err != nil {
		log.Fatalf("crash-partition: %v", err)
	}
	fmt.Printf("greedy band at t=%d: %d crashed (max %d per nbd) → reached %d/%d\n",
		cfg.T, res2.Faults, res2.MaxFaultsPerNbd, res2.Correct, res2.Honest)

	if res.Undecided > 0 && res2.AllCorrect() {
		fmt.Println("the crash threshold is exactly r(2r+1), as Theorems 4 and 5 state")
	}
}
