// Threshold-sweep: sweep the per-neighborhood fault bound t across the
// paper's bounds for each protocol and print the success/failure crossover —
// the empirical counterpart of the theorems' threshold table.
//
// Byzantine protocols face the strongest legal band adversary at each t
// (greedy checkerboard-first packing) plus the exact Fig 13 construction at
// the impossibility point; the crash column uses the Fig 8 band.
//
// The whole sweep is dispatched as one rbcast.RunBatch call: every (t,
// protocol) cell is an independent job, executed across GOMAXPROCS workers,
// with results returned in job order so the printed table is identical to a
// sequential loop.
package main

import (
	"fmt"
	"log"

	"repro"
)

const columns = 4 // bv4, bv2, cpa, flood

func main() {
	const r = 1
	fmt.Printf("r = %d: Byzantine threshold t < %.1f (max %d), crash threshold t < %d\n\n",
		r, float64(r*(2*r+1))/2, rbcast.MaxByzantineLinf(r), rbcast.MinImpossibleCrashLinf(r))

	fmt.Println("t   bv4(band)  bv2(band)  cpa(band)  flood(crash band)")
	tMax := rbcast.MinImpossibleCrashLinf(r)

	var jobs []rbcast.Job
	for t := 0; t <= tMax; t++ {
		for _, proto := range []rbcast.Protocol{rbcast.ProtocolBV4, rbcast.ProtocolBV2, rbcast.ProtocolCPA} {
			jobs = append(jobs, byzJob(proto, r, t))
		}
		jobs = append(jobs, crashJob(r, t))
	}
	results := rbcast.RunBatch(jobs, rbcast.BatchOptions{})

	for t := 0; t <= tMax; t++ {
		row := fmt.Sprintf("%-3d", t)
		for i := 0; i < columns; i++ {
			br := results[t*columns+i]
			if br.Err != nil {
				log.Fatalf("threshold-sweep: %v", br.Err)
			}
			row += fmt.Sprintf(" %-10s", cell(br.Result))
		}
		fmt.Println(row)
	}
	fmt.Println("\n'ok' = every honest node committed correctly; 'stall' = some never decided.")
	fmt.Println("The Byzantine column flips exactly at t =", rbcast.MinImpossibleByzantineLinf(r),
		"and the crash column at t =", rbcast.MinImpossibleCrashLinf(r), "— the paper's exact thresholds.")
}

// byzJob builds one Byzantine scenario: the strongest band placement the
// budget t admits (at the impossibility point this is the full Fig 13
// checkerboard).
func byzJob(proto rbcast.Protocol, r, t int) rbcast.Job {
	cfg := rbcast.Config{
		Width: 16, Height: 10, Radius: r,
		Protocol: proto, T: t, Value: 1,
	}
	plan := rbcast.FaultPlan{
		Placement: rbcast.PlaceGreedyBand,
		Strategy:  rbcast.StrategySilent,
		Budget:    t,
	}
	if t >= rbcast.MinImpossibleByzantineLinf(r) {
		plan.Placement = rbcast.PlaceCheckerboardBand
	}
	if t == 0 {
		plan = rbcast.FaultPlan{}
	}
	return rbcast.Job{Config: cfg, Plan: plan}
}

// crashJob builds flooding against the densest band the crash budget admits.
func crashJob(r, t int) rbcast.Job {
	cfg := rbcast.Config{
		Width: 16, Height: 10, Radius: r,
		Protocol: rbcast.ProtocolFlood, T: t, Value: 1,
	}
	plan := rbcast.FaultPlan{
		Placement: rbcast.PlaceGreedyBand,
		Strategy:  rbcast.StrategyCrash,
		Budget:    t,
	}
	if t >= rbcast.MinImpossibleCrashLinf(r) {
		plan.Placement = rbcast.PlaceBand
	}
	if t == 0 {
		plan = rbcast.FaultPlan{}
	}
	return rbcast.Job{Config: cfg, Plan: plan}
}

// cell renders a result as ok/stall/UNSAFE.
func cell(res rbcast.Result) string {
	switch {
	case !res.Safe():
		return "UNSAFE"
	case res.AllCorrect():
		return "ok"
	default:
		return "stall"
	}
}
