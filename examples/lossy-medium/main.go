// Lossy-medium: the §II probabilistic local-broadcast primitive. The paper
// assumes a perfectly reliable channel but notes that "it may be possible to
// implement a local broadcast primitive that can provide probabilistic
// guarantees". Here each transmission is lost per-receiver with probability
// p, and blind retransmission rebuilds the guarantee: watch delivery recover
// as the retransmission count grows.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	cfg := rbcast.Config{
		Width: 16, Height: 16, Radius: 1,
		Protocol: rbcast.ProtocolFlood,
		Value:    1,
	}
	const runs = 10

	fmt.Println("loss  retx  mean delivered fraction")
	for _, loss := range []float64{0.5, 0.8} {
		for _, retx := range []int{1, 2, 4, 8} {
			sum := 0.0
			for seed := int64(0); seed < runs; seed++ {
				c := cfg
				c.LossRate = loss
				c.Retransmit = retx
				c.MediumSeed = seed
				res, err := rbcast.Run(c, rbcast.FaultPlan{})
				if err != nil {
					log.Fatalf("lossy-medium: %v", err)
				}
				sum += float64(res.Correct) / float64(res.Honest)
			}
			mean := sum / runs
			bar := ""
			for i := 0.0; i < mean*32; i++ {
				bar += "█"
			}
			fmt.Printf("%.1f   %-4d  %.3f %s\n", loss, retx, mean, bar)
		}
	}
	fmt.Println("\nper-receiver success after k transmissions is 1-p^k: the primitive")
	fmt.Println("turns a lossy channel back into (probabilistic) reliable local broadcast")
}
