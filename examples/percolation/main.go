// Percolation: the random-failure model the paper's conclusion points at
// (§XI): every node crashes independently with probability p_f, and
// crash-stop broadcast reduces to reachability — a site-percolation
// question. Sweep p_f and watch the delivered fraction collapse near the
// critical region.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	cfg := rbcast.Config{
		Width:    24,
		Height:   24,
		Radius:   1,
		Protocol: rbcast.ProtocolFlood,
		Value:    1,
	}
	const runs = 10

	fmt.Println("p_f    mean delivered fraction (over", runs, "seeds)")
	for _, pf := range []float64{0.05, 0.15, 0.25, 0.35, 0.45, 0.55, 0.65} {
		sum := 0.0
		for seed := int64(0); seed < runs; seed++ {
			res, err := rbcast.Run(cfg, rbcast.FaultPlan{
				Placement:   rbcast.PlacePercolation,
				Strategy:    rbcast.StrategyCrash,
				Probability: pf,
				Seed:        seed,
			})
			if err != nil {
				log.Fatalf("percolation: %v", err)
			}
			sum += float64(res.Correct) / float64(res.Honest)
		}
		mean := sum / runs
		bar := ""
		for i := 0.0; i < mean*40; i++ {
			bar += "█"
		}
		fmt.Printf("%.2f   %.3f %s\n", pf, mean, bar)
	}
	fmt.Println("\nfor the L∞ r=1 grid (8 neighbors) the giant component survives")
	fmt.Println("well past p_f = 0.4 — site percolation on the king graph")
}
