// Agreement: Byzantine agreement on the radio grid, built from reliable
// broadcast exactly as the paper's Theorem 1 enables ("establishes an exact
// threshold for Byzantine agreement under this model"). Three committee
// members broadcast their inputs in parallel instances; one of them is
// Byzantine and lies — yet every honest node decides the same value, because
// the shared radio channel makes equivocation physically impossible (§V).
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const r = 1
	cfg := rbcast.AgreementConfig{
		Width: 16, Height: 10, Radius: r,
		Protocol: rbcast.ProtocolBV4,
		T:        rbcast.MaxByzantineLinf(r),
		Committee: []rbcast.Node{
			{X: 0, Y: 0}, {X: 8, Y: 0}, {X: 0, Y: 5},
		},
		Inputs:         []byte{1, 0, 1},
		ByzantineNodes: []rbcast.Node{{X: 8, Y: 0}}, // a lying committee member
		Strategy:       rbcast.StrategyLiar,
	}
	res, err := rbcast.Agree(cfg)
	if err != nil {
		log.Fatalf("agreement: %v", err)
	}

	fmt.Printf("committee of %d (one Byzantine liar), t = %d per neighborhood\n",
		len(cfg.Committee), cfg.T)
	fmt.Printf("run: %d rounds, %d broadcasts across %d parallel instances\n",
		res.Rounds, res.Broadcasts, len(cfg.Committee))
	fmt.Printf("agreement: %v, validity: %v\n", res.Agreement, res.Validity)

	counts := map[byte]int{}
	for _, d := range res.Decisions {
		counts[d]++
	}
	fmt.Printf("decisions: %d nodes → 1, %d nodes → 0\n", counts[1], counts[0])
	if res.Agreement && res.Validity {
		fmt.Println("all honest nodes decided the honest majority input — consensus achieved")
	}
}
